#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iterator>
#include <new>
#include <unordered_map>
#include <utility>

#include "core/batch.hpp"
#include "fault/fault.hpp"
#include "kernels/norms.hpp"
#include "kernels/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "runtime/engine.hpp"

namespace luqr::serve {

namespace detail {

// Shared between the client's JobHandle and whichever thread executes the
// job. All transitions happen under mu; terminal states notify cv.
struct JobState {
  std::mutex mu;
  std::condition_variable cv;
  JobStatus status = JobStatus::Queued;
  SolveReply reply;
  std::exception_ptr error;
  std::uint64_t job_id = 0;  ///< span id, assigned at submit; immutable after
  std::uint64_t t_submit_us = 0;
  std::uint64_t t_start_us = 0;
  /// Deadline / hard wall on the service clock (absolute; 0 = none). Both
  /// are set before the job is published and immutable after.
  std::uint64_t deadline_us = 0;
  std::uint64_t hard_wall_us = 0;
  /// Retry budget (under mu): attempts consumed vs the per-job limit.
  int attempts = 0;
  int max_retries = 0;
  /// Exactly-once settlement: the first complete_* call wins; late settlers
  /// (a watchdog force-fail racing the task's own completion, or vice
  /// versa) observe the flag and back off without touching counters.
  bool settled = false;
};

}  // namespace detail

namespace {

using detail::JobState;

// Process-wide job span ids: every submitted job (any service) gets a
// distinct nonzero id, carried through its engine tasks as TaskAttrs::job
// so traces and metrics correlate across layers.
std::atomic<std::uint64_t> g_job_seq{0};

std::shared_ptr<JobState> make_job_state(std::uint64_t t_submit_us) {
  auto s = std::make_shared<JobState>();
  s->job_id = g_job_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  s->t_submit_us = t_submit_us;
  return s;
}

// Smallest chunk execute_staged will carve a staged group into (the last
// chunk is ragged; a group below the floor runs as one chunk).
constexpr int kMinStagedChunk = 8;

bool is_terminal(JobStatus s) {
  return s == JobStatus::Done || s == JobStatus::Failed ||
         s == JobStatus::Cancelled || s == JobStatus::Rejected ||
         s == JobStatus::Shed;
}

// The Frobenius norm is the one lange() mode whose single accumulator
// propagates both NaN and Inf (One/Inf/Max lose NaN through std::max), so
// one O(n^2) pass answers "is every element finite".
bool finite_matrix(const Matrix<double>& m) {
  if (m.rows() == 0 || m.cols() == 0) return true;
  return std::isfinite(kern::lange(kern::Norm::Fro, m.view()));
}

// Pure transient/deterministic split (no counters): injected faults and
// allocation pressure are worth retrying; everything else (singularity,
// validation, logic errors) would fail identically again.
bool transient_exception(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const fault::InjectedFault&) {
    return true;
  } catch (const std::bad_alloc&) {
    return true;
  } catch (...) {
    return false;
  }
}

// Every knob that shapes a factorization (and its replayed solves), flat
// text: part of the cache identity next to the matrix content hash.
std::string fingerprint(const SolverConfig& c) {
  char buf[384];
  const CriterionSpec& spec = c.criterion();
  std::snprintf(
      buf, sizeof(buf),
      "crit=%d:%.17g:%llu;nb=%d;grid=%dx%d;variant=%d;scope=%d;tree=%d/%d;"
      "exact=%d;growth=%d;refine=%d;tune=%d:%.17g;prec=%d;ir=%d:%.17g",
      static_cast<int>(spec.kind), spec.alpha,
      static_cast<unsigned long long>(spec.seed), c.tile_size(), c.grid_p(),
      c.grid_q(), static_cast<int>(c.variant()),
      static_cast<int>(c.pivot_scope()), static_cast<int>(c.trees().local),
      static_cast<int>(c.trees().dist), c.exact_inv_norm() ? 1 : 0,
      c.track_growth() ? 1 : 0, c.refinement_sweeps(),
      c.has_autotune_target() ? 1 : 0,
      c.has_autotune_target() ? c.autotune_target_lu_fraction() : 0.0,
      static_cast<int>(c.precision()), c.refine().max_iterations,
      c.refine().tolerance);
  return buf;
}

// FNV-1a of the fingerprint text — folded into every content hash so even
// the 64-bit pre-verification key separates configurations (in particular,
// same matrix bytes under different precisions never share a key).
std::uint64_t fingerprint_hash(const std::string& fp) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char ch : fp) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

JobStatus JobHandle::status() const {
  LUQR_REQUIRE(state_ != nullptr, "empty JobHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

void JobHandle::wait() const {
  LUQR_REQUIRE(state_ != nullptr, "empty JobHandle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return is_terminal(state_->status); });
}

bool JobHandle::wait_for(std::uint64_t timeout_us) const {
  return wait_until(std::chrono::steady_clock::now() +
                    std::chrono::microseconds(timeout_us));
}

bool JobHandle::wait_until(std::chrono::steady_clock::time_point deadline) const {
  LUQR_REQUIRE(state_ != nullptr, "empty JobHandle");
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_until(lock, deadline,
                               [this] { return is_terminal(state_->status); });
}

SolveReply JobHandle::get() {
  LUQR_REQUIRE(state_ != nullptr, "empty JobHandle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return is_terminal(state_->status); });
  switch (state_->status) {
    case JobStatus::Done: return std::move(state_->reply);
    case JobStatus::Failed: std::rethrow_exception(state_->error);
    case JobStatus::Cancelled: throw Error("serve: job was cancelled");
    case JobStatus::Rejected:
      throw Error("serve: job rejected (queue full or service shutting down)");
    case JobStatus::Shed:
      throw Error("serve: job shed (deadline exceeded or service degraded)");
    default: throw Error("serve: job in non-terminal state");  // unreachable
  }
}

bool JobHandle::cancel() {
  if (state_ == nullptr) return false;
  bool won = false;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->status == JobStatus::Queued) {
      state_->status = JobStatus::Cancelled;
      won = true;
    }
  }
  if (won) state_->cv.notify_all();
  // Counters and drain accounting happen when the job's owner (dispatcher
  // or engine task) observes the cancellation.
  return won;
}

// ---------------------------------------------------------------------------
// SolveService — lifecycle
// ---------------------------------------------------------------------------

SolveService::SolveService(ServiceConfig config)
    : cfg_(std::move(config)),
      cache_(cfg_.cache_bytes, cfg_.cache_hash),
      queue_(cfg_.queue_capacity) {
  LUQR_REQUIRE(cfg_.solver.external_criterion() == nullptr,
               "serve: the service needs a CriterionSpec-configured solver "
               "(an external Criterion instance is stateful across jobs)");
  LUQR_REQUIRE(cfg_.solver.engine() == nullptr,
               "serve: the service owns its engine; do not set one on the "
               "solver config");
  cfg_.solver.validate();

  if (cfg_.threads > 0) {
    workers_ = cfg_.threads;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    workers_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
  rt::EngineOptions eopt;
  eopt.chaos_seed = cfg_.chaos_seed;
  engine_ = std::make_shared<rt::Engine>(workers_, eopt);
  max_inflight_ = cfg_.max_inflight > 0 ? cfg_.max_inflight : 2 * workers_;
  inflight_limit_ = max_inflight_;
  config_fp_ = fingerprint(cfg_.solver);
  config_fp_hash_ = fingerprint_hash(config_fp_);

  // Request-sized factorizations run as one coarse task on a worker...
  coarse_solver_ = std::make_unique<Solver>(
      SolverConfig(cfg_.solver).backend(Backend::Serial));
  // ...big ones as a fine-grained task graph on the same shared engine,
  // driven by the dispatcher (Serial and Parallel factors are bitwise
  // identical, so the split is invisible to results and to the cache).
  if (cfg_.parallel_factor_tiles > 0 && workers_ > 1 &&
      cfg_.solver.variant() == core::LuVariant::A1) {
    fine_solver_ = std::make_unique<Solver>(
        SolverConfig(cfg_.solver).backend(Backend::Parallel).engine(engine_));
  }

  // Registry series are process-wide: concurrent services add into the same
  // counters/histograms (stats() stays per-instance via the atomics below).
  obs::Registry& reg = obs::Registry::global();
  obs_.submitted = &reg.counter("luqr_serve_jobs_submitted_total", {},
                                "Jobs accepted for execution");
  obs_.completed = &reg.counter("luqr_serve_jobs_completed_total", {},
                                "Jobs that reached Done");
  obs_.failed =
      &reg.counter("luqr_serve_jobs_failed_total", {}, "Jobs that threw");
  obs_.cancelled = &reg.counter("luqr_serve_jobs_cancelled_total", {},
                                "Jobs cancelled before execution");
  obs_.rejected = &reg.counter("luqr_serve_jobs_rejected_total", {},
                               "Jobs rejected at admission");
  obs_.shed = &reg.counter("luqr_serve_shed_total", {},
                           "Jobs shed by SLO control (deadline expired while "
                           "queued, or Batch admission while Degraded)");
  obs_.retries = &reg.counter("luqr_serve_retries_total", {},
                              "Transient-failure retries re-enqueued with "
                              "backoff");
  obs_.faults_injected =
      &reg.counter("luqr_serve_faults_injected_total", {},
                   "Injected faults observed by the serve retry machinery");
  obs_.watchdog_trips =
      &reg.counter("luqr_serve_watchdog_trips_total", {},
                   "Jobs force-failed for exceeding their hard wall");
  obs_.memory_pressure =
      &reg.counter("luqr_serve_memory_pressure_total", {},
                   "Allocation-pressure events (cache evicted, inflight "
                   "limit halved)");
  obs_.health = &reg.gauge("luqr_serve_health", {},
                           "Service health: 0 healthy, 1 degraded, 2 draining");
  obs_.health->set(0.0);
  obs_.latency_us = &reg.histogram("luqr_serve_job_latency_us", {},
                                   "Job submit -> terminal, microseconds");
  obs_.exec_us = &reg.histogram("luqr_serve_job_exec_us", {},
                                "Job execution start -> done, microseconds");
  obs_.queue_us = &reg.histogram("luqr_serve_job_queue_us", {},
                                 "Job submit -> execution start, microseconds");
  obs_.factor_us = &reg.histogram(
      "luqr_serve_job_factor_us", {},
      "Factorization wall time paid by completed jobs (0 on cache hits)");
  obs_.solve_us = &reg.histogram("luqr_serve_job_solve_us", {},
                                 "Triangular-solve wall time per job");
  obs_.refine_us = &reg.histogram(
      "luqr_serve_job_refine_us", {},
      "F32_IR refinement wall time per job (0 outside F32_IR)");
  if (cfg_.sampler_period_ms > 0) {
    obs::EngineSampler::Options sopt;
    sopt.label = "serve";
    sopt.period_ms = cfg_.sampler_period_ms;
    sampler_ = std::make_unique<obs::EngineSampler>(*engine_, sopt);
  }

  start_ = std::chrono::steady_clock::now();
  const int n_dispatchers = std::max(1, cfg_.dispatchers);
  dispatchers_.reserve(static_cast<std::size_t>(n_dispatchers));
  for (int i = 0; i < n_dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  flusher_ = std::thread([this] { flusher_loop(); });
  if (watchdog_enabled()) watchdog_ = std::thread([this] { watchdog_loop(); });
}

SolveService::~SolveService() {
  // Stop accepting, dispatch what was accepted, wait for every job to reach
  // a terminal state, then retire the engine (its destructor drains and
  // joins the workers). The solvers hold engine references too, so they go
  // first — the pool must be fully joined before any other member (mutexes,
  // condition variables) is destroyed under it.
  set_health(Health::Draining);
  queue_.close();
  for (std::thread& t : dispatchers_) t.join();
  {
    std::lock_guard<std::mutex> lock(stage_mu_);
    stage_closed_ = true;
  }
  stage_cv_.notify_all();
  flusher_.join();  // flushes every staged job as chunk tasks first
  drain();
  // The watchdog outlives drain() on purpose: jobs parked in its backoff
  // queue are still active, and only the watchdog can settle them (the
  // closed queue rejects their re-enqueue, so they fail with their stored
  // error, active_ reaches zero, and drain returns).
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  sampler_.reset();  // samples the engine; must stop before it retires
  fine_solver_.reset();
  coarse_solver_.reset();
  engine_.reset();
}

rt::Engine& SolveService::engine() { return *engine_; }

std::uint64_t SolveService::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return active_ == 0; });
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

JobHandle SolveService::enqueue(Job job) {
  const std::size_t members =
      job.kind == Job::Kind::Batch ? job.batch_states.size() : 1;
  std::vector<std::shared_ptr<JobState>> states =
      job.kind == Job::Kind::Batch
          ? job.batch_states
          : std::vector<std::shared_ptr<JobState>>{job.state};
  submitted_.fetch_add(members, std::memory_order_relaxed);
  obs_.submitted->add(members);
  precision_jobs_.record(cfg_.solver.precision(), members);
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ += members;
  }
  // Degraded admission control: Batch work is the first thing to go — the
  // service keeps its remaining capacity for Interactive/Normal traffic
  // until a quiet recovery window restores health.
  if (job.priority == Priority::Batch && health() == Health::Degraded) {
    for (const auto& s : states) complete_shed(s);
    return JobHandle(states.front());
  }
  const int lane = static_cast<int>(job.priority);
  const bool accepted = cfg_.reject_when_full
                            ? queue_.try_push(std::move(job), lane)
                            : queue_.push(std::move(job), lane);
  if (!accepted)
    for (const auto& s : states) complete_rejected(s);
  return JobHandle(states.front());
}

std::shared_ptr<JobState> SolveService::new_job_state(const SubmitOptions& opt,
                                                      bool retryable) {
  auto s = make_job_state(now_us());
  s->max_retries =
      retryable ? (opt.max_retries >= 0 ? opt.max_retries : cfg_.max_retries)
                : 0;
  if (opt.deadline_us != 0) s->deadline_us = s->t_submit_us + opt.deadline_us;
  if (watchdog_enabled()) {
    // Hard wall: the point past which the watchdog declares the job lost and
    // force-fails it. A multiple of the client's deadline when one exists,
    // the configured absolute wall otherwise, unbounded when neither is set.
    const std::uint64_t mult =
        static_cast<std::uint64_t>(std::max(1, cfg_.watchdog_wall_multiple));
    if (s->deadline_us != 0)
      s->hard_wall_us = s->t_submit_us + opt.deadline_us * mult;
    else if (cfg_.hard_wall_us != 0)
      s->hard_wall_us = s->t_submit_us + cfg_.hard_wall_us;
  }
  register_job(s);
  return s;
}

void SolveService::register_job(const std::shared_ptr<JobState>& state) {
  if (!watchdog_enabled() || state->hard_wall_us == 0) return;
  std::lock_guard<std::mutex> lock(jobs_mu_);
  live_jobs_.push_back(state);
}

void SolveService::screen_input(const Matrix<double>& m) const {
  if (!cfg_.screen_inputs || finite_matrix(m)) return;
  throw Error(
      "serve: input contains non-finite values (NaN or Inf); set "
      "ServiceConfig::screen_inputs=false to disable input screening");
}

JobHandle SolveService::submit_solve(Matrix<double> a, Matrix<double> b,
                                     const SubmitOptions& opt) {
  LUQR_REQUIRE(a.rows() == a.cols(), "serve: system matrix must be square");
  LUQR_REQUIRE(b.rows() == a.rows(), "serve: rhs row count mismatch");
  screen_input(a);
  screen_input(b);
  Job job;
  job.kind = Job::Kind::Solve;
  job.priority = opt.priority;
  job.a = std::make_shared<Matrix<double>>(std::move(a));
  job.b = std::move(b);
  job.state = new_job_state(opt, /*retryable=*/true);
  return enqueue(std::move(job));
}

JobHandle SolveService::submit_solve(Matrix<double> a, Matrix<double> b,
                                     Priority priority) {
  SubmitOptions opt;
  opt.priority = priority;
  return submit_solve(std::move(a), std::move(b), opt);
}

JobHandle SolveService::submit_factor(Matrix<double> a,
                                      const SubmitOptions& opt) {
  LUQR_REQUIRE(a.rows() == a.cols(), "serve: system matrix must be square");
  screen_input(a);
  Job job;
  job.kind = Job::Kind::Factor;
  job.priority = opt.priority;
  job.a = std::make_shared<Matrix<double>>(std::move(a));
  job.state = new_job_state(opt, /*retryable=*/true);
  return enqueue(std::move(job));
}

JobHandle SolveService::submit_factor(Matrix<double> a, Priority priority) {
  SubmitOptions opt;
  opt.priority = priority;
  return submit_factor(std::move(a), opt);
}

std::vector<JobHandle> SolveService::submit_batch(Matrix<double> a,
                                                  std::vector<Matrix<double>> bs,
                                                  Priority priority) {
  LUQR_REQUIRE(a.rows() == a.cols(), "serve: system matrix must be square");
  LUQR_REQUIRE(!bs.empty(), "serve: empty batch");
  for (const auto& b : bs)
    LUQR_REQUIRE(b.rows() == a.rows(), "serve: rhs row count mismatch");
  screen_input(a);
  for (const auto& b : bs) screen_input(b);
  Job job;
  job.kind = Job::Kind::Batch;
  job.priority = priority;
  job.a = std::make_shared<Matrix<double>>(std::move(a));
  job.batch_b = std::move(bs);
  SubmitOptions member_opt;
  member_opt.priority = priority;
  job.batch_states.reserve(job.batch_b.size());
  for (std::size_t i = 0; i < job.batch_b.size(); ++i)
    job.batch_states.push_back(new_job_state(member_opt, /*retryable=*/false));
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_members_.fetch_add(job.batch_states.size(), std::memory_order_relaxed);
  std::vector<JobHandle> handles;
  handles.reserve(job.batch_states.size());
  for (const auto& s : job.batch_states) handles.push_back(JobHandle(s));
  enqueue(std::move(job));
  return handles;
}

std::vector<JobHandle> SolveService::submit_many(std::vector<Matrix<double>> as,
                                                 std::vector<Matrix<double>> bs,
                                                 Priority priority) {
  std::vector<std::shared_ptr<const Matrix<double>>> shared;
  shared.reserve(as.size());
  for (auto& a : as)
    shared.push_back(std::make_shared<const Matrix<double>>(std::move(a)));
  return submit_many(std::move(shared), std::move(bs), priority);
}

std::vector<JobHandle> SolveService::submit_many(
    std::vector<std::shared_ptr<const Matrix<double>>> as,
    std::vector<Matrix<double>> bs, Priority priority) {
  LUQR_REQUIRE(as.size() == bs.size(),
               "serve: submit_many needs one rhs per matrix");
  LUQR_REQUIRE(!as.empty(), "serve: empty submit_many");
  std::vector<JobHandle> handles;
  handles.reserve(as.size());
  const std::size_t flush_count =
      static_cast<std::size_t>(cfg_.solver.batch().flush_count);

  // Per-member admission accounting (every member, hit or miss, executes
  // through a chunk task rather than enqueue()).
  const auto count_member = [this] {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs_.submitted->add(1);
    precision_jobs_.record(cfg_.solver.precision(), 1);
    std::lock_guard<std::mutex> lock(mu_);
    ++active_;
  };

  bool staged_any = false;
  // Members collect locally keyed by the first-seen order of their matrix
  // pointer, then stage in stable-sorted runs: a chunk task fuses only
  // members that land in the same chunk, so repeats of one matrix must sit
  // adjacently, not interleaved the way the client happened to submit them.
  std::vector<std::pair<std::size_t, Staged>> hits, misses;
  // Per-call dedup: members sharing one Matrix object hash and cache-probe
  // once. This is what the shared_ptr form buys — a client's repeated
  // systems cost one O(n^2) key per distinct matrix, not per member.
  struct Probe {
    std::uint64_t hash = 0;
    FacPtr fac;            // null = miss at skim time
    std::size_t order = 0;  // first-seen rank, the grouping key
  };
  std::unordered_map<const Matrix<double>*, Probe> seen;
  SubmitOptions member_opt;
  member_opt.priority = priority;
  for (std::size_t i = 0; i < as.size(); ++i) {
    auto state = new_job_state(member_opt, /*retryable=*/false);
    handles.push_back(JobHandle(state));

    // Malformed members fail alone: bulk submission never throws the whole
    // call away for one bad pair.
    if (as[i] == nullptr) {
      count_member();
      complete_error(state, std::make_exception_ptr(
                                Error("serve: null system matrix")));
      continue;
    }
    if (as[i]->rows() != as[i]->cols()) {
      count_member();
      complete_error(state, std::make_exception_ptr(Error(
                                "serve: system matrix must be square")));
      continue;
    }
    if (bs[i].rows() != as[i]->rows()) {
      count_member();
      complete_error(state, std::make_exception_ptr(
                                Error("serve: rhs row count mismatch")));
      continue;
    }
    if (cfg_.screen_inputs &&
        (!finite_matrix(*as[i]) || !finite_matrix(bs[i]))) {
      count_member();
      complete_error(
          state,
          std::make_exception_ptr(Error(
              "serve: input contains non-finite values (NaN or Inf); set "
              "ServiceConfig::screen_inputs=false to disable input "
              "screening")));
      continue;
    }

    std::shared_ptr<const Matrix<double>> a = std::move(as[i]);
    auto it = seen.find(a.get());
    if (it == seen.end()) {
      Probe probe;
      probe.hash = cache_.hash_of(*a) ^ config_fp_hash_;
      probe.fac =
          cache_.find_hashed(*a, config_fp_, probe.hash, /*count_miss=*/true);
      probe.order = seen.size();
      it = seen.emplace(a.get(), std::move(probe)).first;
    }

    if (it->second.fac != nullptr) {
      batch_hits_skimmed_.fetch_add(1, std::memory_order_relaxed);
      count_member();
      Staged staged;
      staged.a = std::move(a);
      staged.b = std::move(bs[i]);
      staged.state = std::move(state);
      staged.fac = it->second.fac;
      staged.hash = it->second.hash;
      staged.priority = priority;
      hits.emplace_back(it->second.order, std::move(staged));
      continue;
    }

    count_member();
    Staged staged;
    staged.a = std::move(a);
    staged.b = std::move(bs[i]);
    staged.state = std::move(state);
    staged.hash = it->second.hash;
    staged.priority = priority;
    misses.emplace_back(it->second.order, std::move(staged));
  }

  // Stable sort by first-seen rank: repeats of a matrix become one
  // contiguous run (in submission order), while distinct matrices keep
  // their relative order.
  const auto by_rank = [](const std::pair<std::size_t, Staged>& l,
                          const std::pair<std::size_t, Staged>& r) {
    return l.first < r.first;
  };
  std::stable_sort(misses.begin(), misses.end(), by_rank);
  std::stable_sort(hits.begin(), hits.end(), by_rank);

  std::vector<std::shared_ptr<JobState>> rejected;
  {
    std::lock_guard<std::mutex> lock(stage_mu_);
    if (stage_closed_) {  // shutdown raced the submit
      for (auto& m : misses) rejected.push_back(std::move(m.second.state));
      for (auto& h : hits) rejected.push_back(std::move(h.second.state));
    } else {
      for (auto& m : misses) {
        const int n = m.second.a->rows();
        StageBucket& bucket = staging_[n];
        if (bucket.jobs.empty()) bucket.oldest_us = now_us();
        bucket.jobs.push_back(std::move(m.second));
        if (bucket.jobs.size() >= flush_count) {
          flush_ready_.push_back(std::move(bucket.jobs));
          staging_.erase(n);
        }
        staged_any = true;
      }
      if (!hits.empty()) {
        // Skim: a cache hit needs no factorization, so it never waits in a
        // size bucket for batch-mates that need one. Hit members ride a
        // solve-only group flushed immediately.
        std::vector<Staged> group;
        group.reserve(hits.size());
        for (auto& h : hits) group.push_back(std::move(h.second));
        flush_ready_.push_back(std::move(group));
        staged_any = true;
      }
    }
  }
  for (auto& st : rejected) complete_rejected(st);
  if (staged_any) stage_cv_.notify_all();
  return handles;
}

// ---------------------------------------------------------------------------
// submit_many staging: flusher and chunk execution
// ---------------------------------------------------------------------------

void SolveService::flusher_loop() {
  std::unique_lock<std::mutex> lock(stage_mu_);
  for (;;) {
    // Count-full groups first: they are already at target fill.
    if (!flush_ready_.empty()) {
      std::vector<Staged> group = std::move(flush_ready_.front());
      flush_ready_.erase(flush_ready_.begin());
      lock.unlock();
      execute_staged(std::move(group));
      lock.lock();
      continue;
    }
    if (stage_closed_) {
      if (staging_.empty()) break;  // everything flushed; exit
      auto it = staging_.begin();
      std::vector<Staged> group = std::move(it->second.jobs);
      staging_.erase(it);
      lock.unlock();
      execute_staged(std::move(group));
      lock.lock();
      continue;
    }
    if (staging_.empty()) {
      stage_cv_.wait(lock);
      continue;
    }
    // Deadline policy: a bucket whose oldest member has waited
    // flush_deadline_us flushes regardless of fill — sparse arrivals get
    // bounded latency, bursts get full chunks.
    const std::uint64_t deadline =
        static_cast<std::uint64_t>(cfg_.solver.batch().flush_deadline_us);
    const std::uint64_t now = now_us();
    std::uint64_t next_due = ~std::uint64_t{0};
    int due_order = -1;
    for (const auto& entry : staging_) {
      const std::uint64_t due = entry.second.oldest_us + deadline;
      if (due <= now) {
        due_order = entry.first;
        break;
      }
      next_due = std::min(next_due, due);
    }
    if (due_order >= 0) {
      auto it = staging_.find(due_order);
      std::vector<Staged> group = std::move(it->second.jobs);
      staging_.erase(it);
      lock.unlock();
      execute_staged(std::move(group));
      lock.lock();
      continue;
    }
    stage_cv_.wait_for(lock, std::chrono::microseconds(next_due - now));
  }
}

void SolveService::execute_staged(std::vector<Staged> group) {
  if (group.empty()) return;
  // One engine task per chunk. The flusher (a non-worker thread) absorbs
  // the inflight wait, so client threads never block on admission and the
  // staging area keeps accumulating while chunks queue up.
  //
  // The library's auto chunk policy optimizes engine overlap (~4 chunks
  // per lane), which shatters a small staged group into single-member
  // chunks — per-job overhead with extra steps. The service floors the
  // chunk size instead: overlap comes from concurrent groups in flight,
  // amortization from fill.
  int chunk_size = cfg_.solver.batch().chunk_size;
  if (chunk_size <= 0)
    chunk_size = std::max(core::auto_chunk_size(group.size(), workers_),
                          kMinStagedChunk);
  const std::vector<core::Chunk> chunks =
      core::plan_chunks(group.size(), chunk_size, workers_);
  for (const core::Chunk& c : chunks) {
    std::vector<Staged> chunk(
        std::make_move_iterator(group.begin() + static_cast<std::ptrdiff_t>(c.begin)),
        std::make_move_iterator(group.begin() + static_cast<std::ptrdiff_t>(c.end)));
    acquire_inflight_slot();
    submit_chunk_task(std::move(chunk));
  }
}

void SolveService::submit_chunk_task(std::vector<Staged> chunk) {
  int prio = 0;
  for (const Staged& s : chunk)
    prio = std::max(prio, static_cast<int>(s.priority));
  const int sweeps = cfg_.solver.refinement_sweeps();
  const std::uint64_t chunk_job_id =
      chunk.empty() ? 0 : chunk.front().state->job_id;
  engine_->submit(
      [this, chunk = std::move(chunk), sweeps] {
        std::vector<std::size_t> live;
        live.reserve(chunk.size());
        for (std::size_t i = 0; i < chunk.size(); ++i)
          if (try_begin(chunk[i].state)) live.push_back(i);

        struct Result {
          Matrix<double> x;
          SolveReport report;
          std::exception_ptr error;
          bool hit = false;
          std::uint64_t factor_us = 0;  // 0 when served by cache or a peer
          std::uint64_t solve_us = 0;   // fused members share the wide solve
        };
        std::vector<Result> results(live.size());
        if (!live.empty()) {
          // One workspace frame for the whole chunk, pre-grown to the
          // shape's pack-scratch high-water: every matrix after the first
          // bump-allocates the exact bytes the first one released (the
          // pack data is per-matrix; the allocation is per-chunk).
          kern::Workspace& ws = kern::tls_workspace();
          kern::Workspace::Frame frame(ws);
          const int n = chunk[live.front()].a->rows();
          const int nb = cfg_.solver.tile_size();
          try {
            ws.reserve(cfg_.solver.precision() == Precision::F64
                           ? core::chunk_scratch_bytes_f64(n, nb)
                           : core::chunk_scratch_bytes_f32(n, nb));
          } catch (const std::bad_alloc&) {
            // The reservation is only a pre-grow optimization; under
            // allocation pressure (or an injected alloc fault) fall through
            // — per-member allocations below retry, and failures isolate to
            // their member instead of escaping into the engine.
          }
          // Phase A — resolve one factorization per live member. Skim hits
          // arrive with theirs. Misses re-probe the cache (an earlier member
          // of this — or a concurrent — chunk may have inserted an equal
          // matrix since the submission skim), then factor. A per-chunk
          // pointer map short-circuits repeated shared_ptr submissions of
          // the same matrix to one resolution. Staged misses bypass the
          // pending_ single-flight map — a duplicate factorization against
          // a racing per-job miss is possible but benign (insert dedupes,
          // results are bitwise identical either way).
          std::vector<FacPtr> facs(live.size());
          std::unordered_map<const Matrix<double>*, FacPtr> local;
          for (std::size_t k = 0; k < live.size(); ++k) {
            const Staged& sj = chunk[live[k]];
            Result& r = results[k];
            try {
              FacPtr fac = sj.fac;
              if (fac != nullptr) {
                r.hit = true;
              } else {
                auto lit = local.find(sj.a.get());
                if (lit != local.end()) {
                  fac = lit->second;
                  r.hit = true;  // resolved by an earlier member this chunk
                } else {
                  fac = cache_.find_hashed(*sj.a, config_fp_, sj.hash, false);
                  r.hit = fac != nullptr;
                  if (!r.hit) {
                    const std::uint64_t t_factor = now_us();
                    fac = std::make_shared<core::Factorization>(
                        coarse_solver_->factor(*sj.a));
                    r.factor_us = now_us() - t_factor;
                    cache_.insert_hashed(*sj.a, config_fp_, sj.hash, fac);
                    factors_coarse_.fetch_add(1, std::memory_order_relaxed);
                  }
                  local.emplace(sj.a.get(), fac);
                }
              }
              facs[k] = std::move(fac);
            } catch (...) {
              r.error = std::current_exception();
            }
          }

          // Phase B — solve. At F64 with no refinement sweeps, members that
          // share a factorization fuse into one multi-column solve: column
          // j of a multi-rhs solve is bitwise identical to the single-rhs
          // solve of column j (the per-column triangular sweeps are
          // independent), so fusion is invisible to clients. Refined
          // precisions iterate on the joint residual — fusing there would
          // couple members — so they solve one by one.
          const bool fuse =
              cfg_.solver.precision() == Precision::F64 && sweeps == 0;
          std::size_t k = 0;
          while (k < live.size()) {
            if (results[k].error != nullptr || facs[k] == nullptr) {
              ++k;
              continue;
            }
            // Gather the run of subsequent members on the same factorization
            // (submit_many stages same-pointer members contiguously).
            std::vector<std::size_t> group{k};
            std::size_t w = 0;
            if (fuse) {
              for (std::size_t j = k + 1; j < live.size(); ++j)
                if (results[j].error == nullptr && facs[j] == facs[k])
                  group.push_back(j);
            }
            if (group.size() == 1) {
              Result& r = results[k];
              const std::uint64_t t_solve = now_us();
              try {
                r.x = facs[k]->solve(chunk[live[k]].b, &r.report, sweeps);
                if (r.report.fell_back)
                  refine_fallbacks_.fetch_add(1, std::memory_order_relaxed);
              } catch (...) {
                r.error = std::current_exception();
              }
              r.solve_us = now_us() - t_solve;
              facs[k].reset();
              ++k;
              continue;
            }
            for (std::size_t g : group) w += chunk[live[g]].b.cols();
            const std::uint64_t t_solve = now_us();
            try {
              const int n_rows = chunk[live[k]].b.rows();
              Matrix<double> bcat(n_rows, static_cast<int>(w));
              int col = 0;
              for (std::size_t g : group) {
                const Matrix<double>& b = chunk[live[g]].b;
                for (int c = 0; c < b.cols(); ++c, ++col)
                  for (int rr = 0; rr < n_rows; ++rr)
                    bcat(rr, col) = b(rr, c);
              }
              SolveReport rep;
              Matrix<double> xcat = facs[k]->solve(bcat, &rep, sweeps);
              fused_cols_.fetch_add(static_cast<std::uint64_t>(w),
                                    std::memory_order_relaxed);
              col = 0;
              for (std::size_t g : group) {
                Result& r = results[g];
                const int bc = chunk[live[g]].b.cols();
                Matrix<double> x(n_rows, bc);
                for (int c = 0; c < bc; ++c, ++col)
                  for (int rr = 0; rr < n_rows; ++rr)
                    x(rr, c) = xcat(rr, col);
                r.x = std::move(x);
                r.report = rep;
              }
            } catch (...) {
              for (std::size_t g : group)
                results[g].error = std::current_exception();
            }
            const std::uint64_t wide_us = now_us() - t_solve;
            for (std::size_t g : group) results[g].solve_us = wide_us;
            // A group may be gapped (a different-fac member interleaved);
            // clearing each consumed slot makes the top-of-loop skip
            // correct without index gymnastics.
            for (std::size_t g : group) facs[g].reset();
            ++k;
          }
          batched_jobs_.fetch_add(live.size(), std::memory_order_relaxed);
          batches_executed_.fetch_add(1, std::memory_order_relaxed);
        }
        release_inflight_slot();
        // Settle after the slot is back (the settlement discipline every
        // execution path follows); per-member isolation — one failed
        // member's neighbors complete normally.
        std::size_t k = 0;
        for (std::size_t i = 0; i < chunk.size(); ++i) {
          if (k < live.size() && live[k] == i) {
            Result& r = results[k++];
            if (r.error) {
              // No retry for staged members (budget 0), but the failure
              // class still drives the degradation machinery (allocation
              // pressure sheds cache + inflight).
              classify_transient(r.error);
              complete_error(chunk[i].state, r.error);
            } else {
              complete_ok(chunk[i].state, std::move(r.x), r.hit, r.report,
                          {r.factor_us, r.solve_us});
            }
          } else {
            settle_skipped(chunk[i].state);
          }
        }
      },
      {}, {"serve-batch-chunk", prio, -1, chunk_job_id});
}

// ---------------------------------------------------------------------------
// State transitions
// ---------------------------------------------------------------------------

bool SolveService::try_begin(const std::shared_ptr<JobState>& state,
                             std::uint64_t start_us) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->status != JobStatus::Queued) return false;  // cancelled
  const std::uint64_t t = start_us != 0 ? start_us : now_us();
  // SLO veto: a job whose deadline passed while it waited must not start —
  // the status stays Queued and settle_skipped routes it to Shed.
  if (state->deadline_us != 0 && t > state->deadline_us) return false;
  state->status = JobStatus::Running;
  state->t_start_us = t;
  return true;
}

void SolveService::on_terminal() {
  // Notify under the lock: a drain()er may destroy this service right after
  // waking, so the broadcast must complete before its wait can return.
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  drain_cv_.notify_all();
}

// Counters and histograms update *before* the state turns terminal (inside
// the same critical section), and active_ drops before the waiter wakes: a
// client returning from get() (or drain()) sees final telemetry. Every
// complete_* checks the settled flag first — the force-settling watchdog
// and the job's own completion race, and exactly one of them accounts.

void SolveService::complete_ok(const std::shared_ptr<JobState>& state,
                               Matrix<double> x, bool cache_hit,
                               const SolveReport& report,
                               const Phases& phases) {
  const std::uint64_t t = now_us();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return;
    state->settled = true;
    completed_.fetch_add(1, std::memory_order_relaxed);
    obs_.completed->add(1);
    state->reply.x = std::move(x);
    state->reply.cache_hit = cache_hit;
    state->reply.report = report;
    state->reply.job_id = state->job_id;
    state->reply.queue_us = state->t_start_us - state->t_submit_us;
    state->reply.exec_us = t - state->t_start_us;
    state->reply.factor_us = phases.factor_us;
    state->reply.solve_us = phases.solve_us;
    state->reply.refine_us = report.refine_us;
    latency_.record(t - state->t_submit_us);
    exec_.record(state->reply.exec_us);
    obs_.latency_us->record(t - state->t_submit_us);
    obs_.exec_us->record(state->reply.exec_us);
    obs_.queue_us->record(state->reply.queue_us);
    obs_.factor_us->record(phases.factor_us);
    obs_.solve_us->record(phases.solve_us);
    obs_.refine_us->record(report.refine_us);
    state->status = JobStatus::Done;
  }
  on_terminal();
  state->cv.notify_all();
}

void SolveService::complete_error(const std::shared_ptr<JobState>& state,
                                  std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return;
    state->settled = true;
    const std::uint64_t lat = now_us() - state->t_submit_us;
    latency_.record(lat);
    obs_.latency_us->record(lat);
    if (state->status == JobStatus::Cancelled) {
      // cancel() already won the client-visible state (e.g. a watchdog
      // force-fail of a job cancelled while queued): account it as
      // cancelled, not failed.
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs_.cancelled->add(1);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.failed->add(1);
      state->error = std::move(error);
      state->status = JobStatus::Failed;
    }
  }
  on_terminal();
  state->cv.notify_all();
}

void SolveService::complete_cancelled(const std::shared_ptr<JobState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return;
    state->settled = true;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    obs_.cancelled->add(1);
    state->status = JobStatus::Cancelled;  // usually set by cancel() already
    const std::uint64_t lat = now_us() - state->t_submit_us;
    latency_.record(lat);
    obs_.latency_us->record(lat);
  }
  on_terminal();
  state->cv.notify_all();
}

void SolveService::complete_shed(const std::shared_ptr<JobState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return;
    state->settled = true;
    const std::uint64_t lat = now_us() - state->t_submit_us;
    latency_.record(lat);
    obs_.latency_us->record(lat);
    if (state->status == JobStatus::Cancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs_.cancelled->add(1);
    } else {
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs_.shed->add(1);
      state->status = JobStatus::Shed;
    }
  }
  on_terminal();
  state->cv.notify_all();
}

void SolveService::settle_skipped(const std::shared_ptr<JobState>& state) {
  // try_begin refused this job. Either cancel() flipped it to Cancelled, or
  // the deadline veto left it Queued — which is the shed path.
  bool expired;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    expired = state->status == JobStatus::Queued;
  }
  if (expired)
    complete_shed(state);
  else
    complete_cancelled(state);
}

void SolveService::complete_rejected(const std::shared_ptr<JobState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return;
    state->settled = true;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs_.rejected->add(1);
    state->status = JobStatus::Rejected;
  }
  on_terminal();
  state->cv.notify_all();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void SolveService::acquire_inflight_slot() {
  std::unique_lock<std::mutex> lock(mu_);
  // The live limit, not the configured one: memory pressure shrinks it and
  // quiet watchdog scans grow it back.
  inflight_cv_.wait(lock, [this] { return inflight_ < inflight_limit_; });
  ++inflight_;
}

void SolveService::release_inflight_slot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  inflight_cv_.notify_one();
}

void SolveService::dispatcher_loop() {
  Job job;
  while (queue_.pop(job)) {
    dispatch(std::move(job));
    job = Job{};  // drop matrix buffers before blocking on the next pop
  }
}

SolveService::Waiters SolveService::take_pending_waiters(
    const std::shared_ptr<Pending>& p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto range = pending_.equal_range(p->hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == p) {
      pending_.erase(it);
      break;
    }
  }
  Waiters waiters = std::move(p->waiters);
  p->waiters.clear();
  return waiters;
}

void SolveService::flush_pending(const std::shared_ptr<Pending>& p,
                                 const FacPtr& fac, std::exception_ptr error) {
  Waiters waiters = take_pending_waiters(p);
  for (auto& w : waiters) w(fac, error);
}

bool SolveService::wants_fine_grained(const Matrix<double>& a) const {
  const int nb = cfg_.solver.tile_size();
  return fine_solver_ != nullptr &&
         (a.rows() + nb - 1) / nb >= cfg_.parallel_factor_tiles;
}

SolveService::FacPtr SolveService::compute_factorization(
    const std::shared_ptr<Matrix<double>>& a, bool fine, std::uint64_t h,
    std::exception_ptr& error) {
  FacPtr fac;
  try {
    // Fault site: a transient serve-layer failure during factorization.
    // Inside the try on purpose — the service's own catch absorbs it, so an
    // injected throw can never poison the shared engine.
    fault::maybe_throw(fault::site::kServeTask);
    Solver& solver = fine ? *fine_solver_ : *coarse_solver_;
    fac = std::make_shared<core::Factorization>(solver.factor(*a));
    cache_.insert_hashed(*a, config_fp_, h, fac);
    (fine ? factors_inline_ : factors_coarse_)
        .fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    error = std::current_exception();
  }
  return fac;
}

// Settlement discipline for every execution path: finish the computation,
// release the inflight slot, and only then drive job states terminal. A
// client observing a terminal state (or drain() observing active_ == 0) is
// thus guaranteed the slot is already back and the counters are final.

void SolveService::submit_solve_task(std::shared_ptr<JobState> state,
                                     Matrix<double> b, FacPtr fac,
                                     bool cache_hit, Priority priority,
                                     std::uint64_t factor_us,
                                     std::uint64_t t_begin_us) {
  const int sweeps = cfg_.solver.refinement_sweeps();
  const std::uint64_t job_id = state->job_id;
  engine_->submit(
      [this, state = std::move(state), b = std::move(b), fac = std::move(fac),
       cache_hit, priority, sweeps, factor_us, t_begin_us]() mutable {
        if (!try_begin(state, t_begin_us)) {
          release_inflight_slot();
          settle_skipped(state);
          return;
        }
        Matrix<double> x;
        SolveReport report;
        std::exception_ptr err;
        const std::uint64_t t_solve = now_us();
        try {
          // Fault site: transient serve-layer failure during the solve; the
          // catch below keeps it out of the engine (and feeds the retry
          // machinery).
          fault::maybe_throw(fault::site::kServeTask);
          x = fac->solve(b, &report, sweeps);
        } catch (...) {
          err = std::current_exception();
        }
        const std::uint64_t solve_us = now_us() - t_solve;
        const bool transient = err != nullptr && classify_transient(err);
        // Poisoned-result containment: a non-finite solution (injected NaN,
        // or a factorization corrupted under pressure) must never let its
        // factorization serve another cache hit. Evict, then retry from
        // scratch; a legitimately non-finite result (singular system)
        // returns as-is once the budget is spent — identical to the legacy
        // behavior.
        const bool poisoned =
            err == nullptr && cfg_.screen_outputs && !finite_matrix(x);
        if (poisoned)
          cache_.erase_hashed(fac->matrix(), config_fp_,
                              cache_.hash_of(fac->matrix()) ^ config_fp_hash_);
        release_inflight_slot();
        if (err != nullptr || poisoned) {
          if (err == nullptr || transient) {
            Job retry;
            retry.kind = Job::Kind::Solve;
            retry.priority = priority;
            retry.a = std::make_shared<Matrix<double>>(fac->matrix());
            retry.b = std::move(b);
            retry.state = state;
            if (maybe_retry(std::move(retry), err)) return;
          }
          if (err != nullptr) {
            complete_error(state, err);
            return;
          }
        }
        if (report.fell_back)
          refine_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        complete_ok(state, std::move(x), cache_hit, report,
                    {factor_us, solve_us});
      },
      {}, {"serve-solve", static_cast<int>(priority), -1, job_id});
}

void SolveService::submit_batch_task(
    std::vector<std::shared_ptr<JobState>> states,
    std::vector<Matrix<double>> bs, FacPtr fac, bool cache_hit,
    Priority priority, std::uint64_t factor_us, std::uint64_t t_begin_us) {
  const std::uint64_t job_id = states.empty() ? 0 : states.front()->job_id;
  engine_->submit(
      [this, states = std::move(states), bs = std::move(bs),
       fac = std::move(fac), cache_hit, factor_us, t_begin_us] {
        // Fuse every member that is still alive into one wide solve.
        std::vector<std::size_t> live;
        for (std::size_t i = 0; i < states.size(); ++i)
          if (try_begin(states[i], t_begin_us)) live.push_back(i);
        fuse_solve_settle(states, bs, live, fac, cache_hit, factor_us);
      },
      {}, {"serve-batch", static_cast<int>(priority), -1, job_id});
}

void SolveService::fuse_solve_settle(
    const std::vector<std::shared_ptr<JobState>>& states,
    const std::vector<Matrix<double>>& bs, const std::vector<std::size_t>& live,
    const FacPtr& fac, bool cache_hit, std::uint64_t factor_us) {
  std::vector<Matrix<double>> xs;
  SolveReport report;
  std::exception_ptr err;
  std::uint64_t solve_us = 0;
  if (!live.empty()) {
    const std::uint64_t t_solve = now_us();
    try {
      int width = 0;
      for (std::size_t idx : live) width += bs[idx].cols();
      const int n = fac->order();
      Matrix<double> bcat(n, width);
      int col = 0;
      for (std::size_t idx : live) {
        const Matrix<double>& b = bs[idx];
        for (int j = 0; j < b.cols(); ++j, ++col)
          for (int i = 0; i < n; ++i) bcat(i, col) = b(i, j);
      }
      const Matrix<double> xw =
          fac->solve(bcat, &report, cfg_.solver.refinement_sweeps());
      if (report.fell_back)
        refine_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      fused_cols_.fetch_add(static_cast<std::uint64_t>(width),
                            std::memory_order_relaxed);
      col = 0;
      for (std::size_t idx : live) {
        const int cols = bs[idx].cols();
        Matrix<double> x(n, cols);
        for (int j = 0; j < cols; ++j, ++col)
          for (int i = 0; i < n; ++i) x(i, j) = xw(i, col);
        xs.push_back(std::move(x));
      }
    } catch (...) {
      err = std::current_exception();
    }
    solve_us = now_us() - t_solve;
  }
  release_inflight_slot();
  for (std::size_t i = 0; i < states.size(); ++i) {
    bool was_live = false;
    for (std::size_t l = 0; l < live.size(); ++l) {
      if (live[l] != i) continue;
      was_live = true;
      if (err)
        complete_error(states[i], err);
      else
        complete_ok(states[i], std::move(xs[l]), cache_hit, report,
                    {factor_us, solve_us});
      break;
    }
    if (!was_live) settle_skipped(states[i]);
  }
}

bool SolveService::job_fully_cancelled(const Job& job) const {
  if (job.kind != Job::Kind::Batch) {
    std::lock_guard<std::mutex> lock(job.state->mu);
    return job.state->status == JobStatus::Cancelled;
  }
  for (const auto& s : job.batch_states) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->status != JobStatus::Cancelled) return false;
  }
  return true;
}

void SolveService::settle_job_cancelled(const Job& job) {
  if (job.kind == Job::Kind::Batch) {
    for (const auto& s : job.batch_states) complete_cancelled(s);
  } else {
    complete_cancelled(job.state);
  }
}

void SolveService::settle_cancelled_owner(const Job& job,
                                          const std::shared_ptr<Pending>& p,
                                          bool fine) {
  // The owner of a pending factorization was cancelled before its work
  // began. Claim the entry atomically — erasing it and taking its waiters
  // in one step, so no waiter can attach to a half-dead entry — and factor
  // only if someone was already waiting on it.
  Waiters waiters = take_pending_waiters(p);
  if (!waiters.empty()) {
    std::exception_ptr error;
    FacPtr fac = compute_factorization(job.a, fine, p->hash, error);
    for (auto& w : waiters) w(fac, error);
  }
  release_inflight_slot();
  settle_job_cancelled(job);
}

bool SolveService::job_guarded(const Job& job) const {
  if (!watchdog_enabled()) return false;
  if (job.kind != Job::Kind::Batch) return job.state->hard_wall_us != 0;
  for (const auto& s : job.batch_states)
    if (s->hard_wall_us == 0) return false;
  return !job.batch_states.empty();
}

void SolveService::dispatch(Job job) {
  // Jobs cancelled while queued are settled here, before admission.
  if (job_fully_cancelled(job)) {
    settle_job_cancelled(job);
    return;
  }

  if (fault::plan() != nullptr) {
    fault::maybe_delay(fault::site::kServeDelay);
    // Honor an injected drop only when the watchdog guards every member
    // (hard wall set): the job vanishes here — before any slot is held —
    // and the hard-wall scan recovers it, so clients never hang.
    if (job_guarded(job) && fault::should_fire(fault::site::kServeDrop)) return;
  }

  // Dequeue-time SLO shedding: a single job whose deadline passed while it
  // queued is dropped before it consumes an inflight slot or any engine
  // time (batch members are vetoed per-member at try_begin instead).
  if (job.kind != Job::Kind::Batch && job.state->deadline_us != 0 &&
      now_us() > job.state->deadline_us) {
    complete_shed(job.state);
    return;
  }

  acquire_inflight_slot();

  // Resolve the factorization source: cache hit, attach to an in-flight
  // factorization of the same matrix, or become the owner of a new one.
  // Every O(n^2) byte compare (the verified cache probe and the pending
  // candidates' identity checks) runs *outside* mu_ — the service lock
  // guards only map transitions, so job completions, slot releases and
  // other dispatchers never stall behind a compare. The retry loop absorbs
  // the races that opens: a candidate that completes mid-verify sends us
  // back to the cache probe; an entry published after the snapshot gets
  // verified on the next pass. (A factorization that completes entirely
  // inside the probe-to-insert window can still slip through and be
  // factored twice — benign: insert dedupes and results are identical.)
  const std::uint64_t h = cache_.hash_of(*job.a) ^ config_fp_hash_;
  bool count_miss = true;  // later passes re-examine one logical lookup
  std::shared_ptr<Pending> owned;
  for (;;) {
    if (FacPtr fac = cache_.find_hashed(*job.a, config_fp_, h, count_miss)) {
      dispatch_with_factorization(std::move(job), std::move(fac), true);
      return;
    }
    count_miss = false;

    std::vector<std::shared_ptr<Pending>> candidates;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto range = pending_.equal_range(h);
      for (auto it = range.first; it != range.second; ++it)
        candidates.push_back(it->second);
    }
    std::shared_ptr<Pending> match;
    for (const auto& c : candidates) {
      if (matrices_equal(*c->a, *job.a)) {  // non-matches are hash collisions
        match = c;
        break;
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      auto range = pending_.equal_range(h);
      if (match) {
        for (auto it = range.first; it != range.second; ++it) {
          if (it->second == match) {
            attach_to_pending(*match, std::move(job));
            return;  // attach only queued a closure; holding the lock is fine
          }
        }
        continue;  // the match completed while we verified: re-probe
      }
      bool unseen = false;
      for (auto it = range.first; it != range.second; ++it) {
        bool known = false;
        for (const auto& c : candidates) known = known || c == it->second;
        unseen = unseen || !known;
      }
      if (unseen) continue;  // new entry since the snapshot: verify it first
      owned = std::make_shared<Pending>();
      owned->hash = h;
      owned->a = job.a;
      pending_.emplace(h, owned);
    }
    break;
  }

  // Owner path. Fine-grained factorizations are driven right here (the
  // dispatcher is a non-worker thread, so it may block on the engine);
  // coarse ones ride inside the job's own engine task.
  if (wants_fine_grained(*job.a)) {
    // Re-check cancellation: the slot wait above can be long, and a job
    // cancelled during it must not burn an O(n^3) factorization — unless
    // waiters already attached to the pending entry and need it.
    if (job_fully_cancelled(job)) {
      settle_cancelled_owner(job, owned, /*fine=*/true);
      return;
    }
    // The job starts executing here, on the dispatcher — its span's exec
    // phase is backdated to t0 so it contains the factorization.
    const std::uint64_t t0 = now_us();
    std::exception_ptr error;
    FacPtr fac = compute_factorization(job.a, /*fine=*/true, h, error);
    const std::uint64_t factor_us = now_us() - t0;
    flush_pending(owned, fac, error);
    if (error) {
      const bool transient = classify_transient(error);
      release_inflight_slot();
      if (transient && job.kind != Job::Kind::Batch) {
        Job retry;
        retry.kind = job.kind;
        retry.priority = job.priority;
        retry.a = job.a;
        retry.b = std::move(job.b);
        retry.state = job.state;
        if (maybe_retry(std::move(retry), error)) return;
      }
      fail_job(job, error);
      return;
    }
    dispatch_with_factorization(std::move(job), std::move(fac), false,
                                factor_us, t0);
    return;
  }
  submit_owner_task(std::move(job), std::move(owned));
}

void SolveService::attach_to_pending(Pending& p, Job job) {
  // Single-flight: this job parks a continuation on the in-flight
  // factorization instead of computing its own. Runs on whichever thread
  // finishes the factorization; submitting engine tasks from there is safe.
  if (job.kind == Job::Kind::Batch) {
    p.waiters.push_back(
        [this, states = std::move(job.batch_states), bs = std::move(job.batch_b),
         prio = job.priority](const FacPtr& fac, std::exception_ptr err) mutable {
          if (err) {
            release_inflight_slot();
            for (const auto& s : states)
              if (try_begin(s))
                complete_error(s, err);
              else
                settle_skipped(s);
            return;
          }
          submit_batch_task(std::move(states), std::move(bs), fac, false, prio,
                            /*factor_us=*/0);
        });
    return;
  }
  // The waiter keeps the job's matrix: when the owner's factorization dies
  // of a transient fault, each waiter re-enqueues independently (one of the
  // retries becomes the next owner; the rest attach again).
  p.waiters.push_back(
      [this, kind = job.kind, state = std::move(job.state), b = std::move(job.b),
       a = job.a, prio = job.priority](const FacPtr& fac,
                                       std::exception_ptr err) mutable {
        if (err) {
          release_inflight_slot();
          if (transient_exception(err)) {
            Job retry;
            retry.kind = kind;
            retry.priority = prio;
            retry.a = std::move(a);
            retry.b = std::move(b);
            retry.state = state;
            if (maybe_retry(std::move(retry), err)) return;
          }
          if (try_begin(state))
            complete_error(state, err);
          else
            settle_skipped(state);
          return;
        }
        if (kind == Job::Kind::Factor) {
          const bool began = try_begin(state);
          release_inflight_slot();
          if (began)
            complete_ok(state, Matrix<double>{}, false);
          else
            settle_skipped(state);
          return;
        }
        submit_solve_task(std::move(state), std::move(b), fac, false, prio,
                          /*factor_us=*/0);
      });
}

void SolveService::dispatch_with_factorization(Job job, FacPtr fac, bool hit,
                                               std::uint64_t factor_us,
                                               std::uint64_t t_begin_us) {
  switch (job.kind) {
    case Job::Kind::Factor: {
      // Nothing left to compute: settle on the dispatcher.
      const bool began = try_begin(job.state, t_begin_us);
      release_inflight_slot();
      if (began)
        complete_ok(job.state, Matrix<double>{}, hit, {}, {factor_us, 0});
      else
        settle_skipped(job.state);
      return;
    }
    case Job::Kind::Solve:
      submit_solve_task(std::move(job.state), std::move(job.b), std::move(fac),
                        hit, job.priority, factor_us, t_begin_us);
      return;
    case Job::Kind::Batch:
      submit_batch_task(std::move(job.batch_states), std::move(job.batch_b),
                        std::move(fac), hit, job.priority, factor_us,
                        t_begin_us);
      return;
  }
}

void SolveService::fail_job(const Job& job, std::exception_ptr error) {
  if (job.kind == Job::Kind::Batch) {
    for (const auto& s : job.batch_states)
      if (try_begin(s))
        complete_error(s, error);
      else
        settle_skipped(s);
    return;
  }
  if (try_begin(job.state))
    complete_error(job.state, error);
  else
    settle_skipped(job.state);
}

void SolveService::submit_owner_task(Job job, std::shared_ptr<Pending> p) {
  const std::uint64_t job_id = job.kind == Job::Kind::Batch
                                   ? (job.batch_states.empty()
                                          ? 0
                                          : job.batch_states.front()->job_id)
                                   : job.state->job_id;
  const int priority = static_cast<int>(job.priority);
  auto shared_job = std::make_shared<Job>(std::move(job));
  engine_->submit(
      [this, shared_job, p] {
        Job& job = *shared_job;

        // Did the owner get cancelled while queued on the engine? If nobody
        // attached to its pending factorization, the work can be skipped
        // entirely; otherwise the factorization still has customers.
        std::vector<std::shared_ptr<JobState>> began;
        if (job.kind == Job::Kind::Batch) {
          for (const auto& s : job.batch_states)
            if (try_begin(s)) began.push_back(s);
        } else if (try_begin(job.state)) {
          began.push_back(job.state);
        }

        if (began.empty()) {
          // The whole job was cancelled while queued on the engine.
          settle_cancelled_owner(job, p, /*fine=*/false);
          return;
        }

        const std::uint64_t t_factor = now_us();
        std::exception_ptr error;
        FacPtr fac = compute_factorization(job.a, /*fine=*/false, p->hash, error);
        const std::uint64_t factor_us = now_us() - t_factor;
        flush_pending(p, fac, error);

        if (error) {
          const bool transient = classify_transient(error);
          release_inflight_slot();
          if (transient && job.kind != Job::Kind::Batch) {
            Job retry;
            retry.kind = job.kind;
            retry.priority = job.priority;
            retry.a = job.a;
            retry.b = std::move(job.b);
            retry.state = job.state;
            if (maybe_retry(std::move(retry), error)) return;
          }
          for (const auto& s : began) complete_error(s, error);
          // Batch members whose cancel() (or deadline) won before try_begin.
          if (job.kind == Job::Kind::Batch) {
            for (const auto& s : job.batch_states) {
              bool skipped = true;
              for (const auto& g : began) skipped = skipped && g != s;
              if (skipped) settle_skipped(s);
            }
          }
          return;
        }

        if (job.kind == Job::Kind::Batch) {
          std::vector<std::size_t> live;
          for (std::size_t i = 0; i < job.batch_states.size(); ++i)
            for (const auto& g : began)
              if (job.batch_states[i] == g) {
                live.push_back(i);
                break;
              }
          fuse_solve_settle(job.batch_states, job.batch_b, live, fac, false,
                            factor_us);
          return;
        }
        Matrix<double> x;
        SolveReport report;
        std::exception_ptr solve_err;
        const std::uint64_t t_solve = now_us();
        try {
          if (job.kind == Job::Kind::Solve)
            x = fac->solve(job.b, &report, cfg_.solver.refinement_sweeps());
        } catch (...) {
          solve_err = std::current_exception();
        }
        const std::uint64_t solve_us =
            job.kind == Job::Kind::Solve ? now_us() - t_solve : 0;
        const bool transient =
            solve_err != nullptr && classify_transient(solve_err);
        const bool poisoned = solve_err == nullptr &&
                              job.kind == Job::Kind::Solve &&
                              cfg_.screen_outputs && !finite_matrix(x);
        if (poisoned)
          cache_.erase_hashed(fac->matrix(), config_fp_,
                              cache_.hash_of(fac->matrix()) ^ config_fp_hash_);
        release_inflight_slot();
        if (solve_err != nullptr || poisoned) {
          if (solve_err == nullptr || transient) {
            Job retry;
            retry.kind = Job::Kind::Solve;
            retry.priority = job.priority;
            retry.a = job.a;
            retry.b = std::move(job.b);
            retry.state = job.state;
            if (maybe_retry(std::move(retry), solve_err)) return;
          }
          if (solve_err != nullptr) {
            complete_error(job.state, solve_err);
            return;
          }
        }
        if (report.fell_back)
          refine_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        complete_ok(job.state, std::move(x), false, report,
                    {factor_us, solve_us});
      },
      {}, {"serve-factor", priority, -1, job_id});
}

// ---------------------------------------------------------------------------
// Resilience: retries, watchdog, health
// ---------------------------------------------------------------------------

Health SolveService::health() const {
  return static_cast<Health>(health_.load(std::memory_order_relaxed));
}

void SolveService::set_health(Health h) {
  health_.store(static_cast<int>(h), std::memory_order_relaxed);
  obs_.health->set(static_cast<double>(static_cast<int>(h)));
}

void SolveService::set_degraded() {
  // Only Healthy degrades; Draining (shutdown) is never overwritten.
  int expected = static_cast<int>(Health::Healthy);
  if (health_.compare_exchange_strong(expected,
                                      static_cast<int>(Health::Degraded),
                                      std::memory_order_relaxed))
    obs_.health->set(static_cast<double>(static_cast<int>(Health::Degraded)));
  trouble_.store(true, std::memory_order_relaxed);
}

bool SolveService::classify_transient(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const fault::InjectedFault&) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    obs_.faults_injected->add(1);
    return true;
  } catch (const std::bad_alloc&) {
    on_memory_pressure();
    return true;
  } catch (...) {
    return false;
  }
}

void SolveService::on_memory_pressure() {
  memory_pressure_.fetch_add(1, std::memory_order_relaxed);
  obs_.memory_pressure->add(1);
  // Graceful degradation instead of cascading failure: give back half the
  // cache (entries in use stay alive via shared_ptr) and halve concurrent
  // admissions so each inflight job sees more headroom. Quiet watchdog
  // scans restore the limit one slot at a time.
  cache_.evict_to(cache_.stats().bytes / 2);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_limit_ = std::max(1, inflight_limit_ / 2);
  }
  inflight_cv_.notify_all();
  set_degraded();
}

bool SolveService::maybe_retry(Job job, std::exception_ptr err) {
  if (!watchdog_enabled()) return false;  // nobody to run the backoff queue
  if (job.kind == Job::Kind::Batch) return false;
  if (err == nullptr)
    err = std::make_exception_ptr(
        Error("serve: non-finite solution (retries exhausted)"));
  const std::shared_ptr<JobState>& state = job.state;
  std::uint64_t due;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->settled) return false;
    if (state->status == JobStatus::Cancelled) return false;
    if (state->attempts >= state->max_retries) return false;
    const std::uint64_t now = now_us();
    if (state->deadline_us != 0 && now >= state->deadline_us) return false;
    ++state->attempts;
    // Back to Queued: the retry re-enters the normal dispatch pipeline, so
    // cancel(), deadlines, and the watchdog all keep working on it.
    state->status = JobStatus::Queued;
    due = now + (cfg_.retry_backoff_us
                 << (static_cast<unsigned>(state->attempts) - 1));
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  obs_.retries->add(1);
  bool parked = false;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    if (!watchdog_stop_) {
      retry_queue_.push_back(RetryItem{due, std::move(job), std::move(err)});
      parked = true;
    }
  }
  if (parked) {
    watchdog_cv_.notify_all();
    return true;
  }
  // The watchdog already stopped (destructor tail): no backoff is possible,
  // and the caller settles with the original error.
  return false;
}

void SolveService::requeue_retry(RetryItem item) {
  if (job_fully_cancelled(item.job)) {
    settle_job_cancelled(item.job);
    return;
  }
  // Keep what settlement needs before the push consumes the job.
  std::shared_ptr<JobState> state = item.job.state;
  const int lane = static_cast<int>(item.job.priority);
  if (queue_.try_push(std::move(item.job), lane)) return;
  // Queue closed (shutdown) or full under overload: the retry loses its
  // attempt and the job settles with the failure that triggered it.
  complete_error(state, std::move(item.error));
}

void SolveService::scan_hard_walls(std::uint64_t now) {
  std::vector<std::shared_ptr<JobState>> expired;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = live_jobs_.begin();
    while (it != live_jobs_.end()) {
      std::shared_ptr<JobState> s = it->lock();
      if (s == nullptr) {
        it = live_jobs_.erase(it);  // every handle dropped; job long settled
        continue;
      }
      bool done;
      {
        std::lock_guard<std::mutex> sl(s->mu);
        done = s->settled;
        if (!done && now > s->hard_wall_us) expired.push_back(s);
      }
      if (done)
        it = live_jobs_.erase(it);
      else
        ++it;
    }
  }
  for (const auto& s : expired) {
    watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
    obs_.watchdog_trips->add(1);
    set_degraded();
    // Force-settle: whatever happened to this job (dropped, stalled, lost),
    // its client must not hang. If the real completion races in first, the
    // settled flag makes this a no-op; if it arrives later, likewise.
    complete_error(s, std::make_exception_ptr(Error(
                          "serve: watchdog hard wall exceeded; job "
                          "force-failed (service degraded)")));
  }
}

void SolveService::watchdog_loop() {
  const auto period = std::chrono::milliseconds(
      std::max(1, cfg_.watchdog_period_ms));
  int quiet_scans = 0;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (!watchdog_stop_) watchdog_cv_.wait_for(lock, period);
    const bool stopping = watchdog_stop_;
    // Move due retries out (all of them when stopping: the closed queue
    // rejects them and requeue_retry settles each with its stored error).
    const std::uint64_t now = now_us();
    std::vector<RetryItem> due;
    auto it = retry_queue_.begin();
    while (it != retry_queue_.end()) {
      if (stopping || it->due_us <= now) {
        due.push_back(std::move(*it));
        it = retry_queue_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    for (auto& r : due) requeue_retry(std::move(r));
    if (stopping) return;

    scan_hard_walls(now);

    // Health recovery: a full quiet window (no trips, no pressure) since
    // the last trouble promotes Degraded back to Healthy; every quiet scan
    // also restores one admission slot clawed back under pressure.
    if (trouble_.exchange(false, std::memory_order_relaxed)) {
      quiet_scans = 0;
    } else {
      ++quiet_scans;
      {
        std::lock_guard<std::mutex> ml(mu_);
        if (inflight_limit_ < max_inflight_) {
          ++inflight_limit_;
          inflight_cv_.notify_all();
        }
      }
      if (quiet_scans >= std::max(1, cfg_.degraded_recovery_periods)) {
        int expected = static_cast<int>(Health::Degraded);
        if (health_.compare_exchange_strong(expected,
                                            static_cast<int>(Health::Healthy),
                                            std::memory_order_relaxed))
          obs_.health->set(0.0);
      }
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.memory_pressure = memory_pressure_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.health = health();
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_members = batch_members_.load(std::memory_order_relaxed);
  s.fused_rhs_columns = fused_cols_.load(std::memory_order_relaxed);
  s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  s.batches_executed = batches_executed_.load(std::memory_order_relaxed);
  s.batch_hits_skimmed = batch_hits_skimmed_.load(std::memory_order_relaxed);
  s.batch_fill_mean = s.batches_executed > 0
                          ? static_cast<double>(s.batched_jobs) /
                                static_cast<double>(s.batches_executed)
                          : 0.0;
  s.factors_coarse = factors_coarse_.load(std::memory_order_relaxed);
  s.factors_inline_parallel = factors_inline_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.inflight = static_cast<std::size_t>(inflight_);
    s.inflight_limit = inflight_limit_;
    s.pending_factorizations = pending_.size();
  }
  s.cache = cache_.stats();
  s.jobs_f64 = precision_jobs_.f64.load(std::memory_order_relaxed);
  s.jobs_f32 = precision_jobs_.f32.load(std::memory_order_relaxed);
  s.jobs_f32_ir = precision_jobs_.f32_ir.load(std::memory_order_relaxed);
  s.refine_fallbacks = refine_fallbacks_.load(std::memory_order_relaxed);
  s.latency_p50_us = latency_.quantile_us(0.50);
  s.latency_p99_us = latency_.quantile_us(0.99);
  s.latency_max_us = latency_.max_us();
  s.latency_mean_us = latency_.mean_us();
  s.exec_p50_us = exec_.quantile_us(0.50);
  s.exec_p99_us = exec_.quantile_us(0.99);
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  s.jobs_per_second =
      s.uptime_seconds > 0.0 ? static_cast<double>(s.completed) / s.uptime_seconds
                             : 0.0;
  s.engine_tasks_executed = engine_->tasks_executed();
  s.engine_steals = engine_->steals();
  s.workspace_bytes = engine_->workspace_bytes();
  s.workers = workers_;
  return s;
}

}  // namespace luqr::serve
