// Service telemetry primitives: lock-free counters and a latency histogram.
//
// Every serve-layer hot path records into relaxed atomics only — a stats()
// snapshot may be momentarily inconsistent across counters (standard for
// service telemetry) but never blocks a client or a worker.
//
// LatencyHistogram is the serve-flavoured face of obs::Histogram (the
// process-wide metrics primitive this type was generalized into): same
// power-of-two microsecond buckets, thread-sharded wait-free record path,
// conservative upper-bounded quantiles. The adapter keeps the serve-layer
// vocabulary (quantile_us, mean_us) while the storage and math live in one
// place.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/precision.hpp"
#include "obs/metrics.hpp"

namespace luqr::serve {

/// Per-precision job counters (how many jobs each working precision served),
/// relaxed like every other counter here.
struct PrecisionCounters {
  std::atomic<std::uint64_t> f64{0};
  std::atomic<std::uint64_t> f32{0};
  std::atomic<std::uint64_t> f32_ir{0};

  void record(core::Precision p, std::uint64_t n = 1) {
    switch (p) {
      case core::Precision::F64: f64.fetch_add(n, std::memory_order_relaxed); break;
      case core::Precision::F32: f32.fetch_add(n, std::memory_order_relaxed); break;
      case core::Precision::F32_IR:
        f32_ir.fetch_add(n, std::memory_order_relaxed);
        break;
    }
  }
};

/// Power-of-two-bucketed latency recorder (microseconds). record() is
/// wait-free; quantile_us() walks the 48 buckets. Backed by obs::Histogram.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = obs::kHistogramBuckets;

  void record(std::uint64_t us) { h_.record(us); }
  std::uint64_t count() const { return h_.count(); }
  double mean_us() const { return h_.mean(); }
  std::uint64_t max_us() const { return h_.max(); }

  /// Upper edge of the bucket holding quantile q in [0, 1] — a conservative
  /// estimate within a factor of two of the true quantile (and clamped to
  /// the exact observed maximum).
  std::uint64_t quantile_us(double q) const { return h_.quantile(q); }

 private:
  obs::Histogram h_;
};

}  // namespace luqr::serve
