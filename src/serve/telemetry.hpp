// Service telemetry primitives: lock-free counters and a latency histogram.
//
// Every serve-layer hot path records into relaxed atomics only — a stats()
// snapshot may be momentarily inconsistent across counters (standard for
// service telemetry) but never blocks a client or a worker.
//
// LatencyHistogram buckets microsecond latencies by power of two, so p50/p99
// come out as conservative (upper-bounded) estimates with O(1) record cost
// and a few hundred bytes of state — the classic HdrHistogram shape, sized
// for a solver service rather than a profiler.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/precision.hpp"

namespace luqr::serve {

/// Per-precision job counters (how many jobs each working precision served),
/// relaxed like every other counter here.
struct PrecisionCounters {
  std::atomic<std::uint64_t> f64{0};
  std::atomic<std::uint64_t> f32{0};
  std::atomic<std::uint64_t> f32_ir{0};

  void record(core::Precision p, std::uint64_t n = 1) {
    switch (p) {
      case core::Precision::F64: f64.fetch_add(n, std::memory_order_relaxed); break;
      case core::Precision::F32: f32.fetch_add(n, std::memory_order_relaxed); break;
      case core::Precision::F32_IR:
        f32_ir.fetch_add(n, std::memory_order_relaxed);
        break;
    }
  }
};

/// Power-of-two-bucketed latency recorder (microseconds). record() is
/// wait-free; quantile() walks the 48 buckets.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;  // covers up to ~2^48 us (~8.9 years)

  void record(std::uint64_t us) {
    buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t cur = max_us_.load(std::memory_order_relaxed);
    while (us > cur &&
           !max_us_.compare_exchange_weak(cur, us, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  double mean_us() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  std::uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }

  /// Upper edge of the bucket holding quantile q in [0, 1] — a conservative
  /// estimate within a factor of two of the true quantile (and clamped to
  /// the exact observed maximum).
  std::uint64_t quantile_us(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen >= target) {
        const std::uint64_t edge =
            b + 1 >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << (b + 1)) - 1;
        const std::uint64_t mx = max_us();
        return mx != 0 && mx < edge ? mx : edge;
      }
    }
    return max_us();
  }

 private:
  static int bucket_of(std::uint64_t us) {
    int b = 0;
    while (us > 1 && b < kBuckets - 1) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

}  // namespace luqr::serve
