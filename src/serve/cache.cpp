#include "serve/cache.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace luqr::serve {

namespace {

// Process-wide registry mirrors of the cache counters. Each cache instance
// keeps its own authoritative CacheStats (tests run several services side
// by side and must not see each other's traffic); the registry series
// aggregate across every cache in the process, which is exactly what a
// scrape wants. Bytes/entries are additive gauges, so concurrent caches sum.
struct CacheObs {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& inserts;
  obs::Counter& evictions;
  obs::Counter& oversize;
  obs::Gauge& bytes;
  obs::Gauge& entries;
};

CacheObs& cache_obs() {
  static CacheObs* o = [] {
    obs::Registry& reg = obs::Registry::global();
    return new CacheObs{
        reg.counter("luqr_cache_hits_total", {},
                    "Factorization cache hits (verified probes)"),
        reg.counter("luqr_cache_misses_total", {},
                    "Factorization cache misses (first probe per lookup)"),
        reg.counter("luqr_cache_inserts_total", {},
                    "Factorizations admitted into a cache"),
        reg.counter("luqr_cache_evictions_total", {},
                    "LRU evictions across all caches"),
        reg.counter("luqr_cache_oversize_rejects_total", {},
                    "Factorizations larger than an entire cache budget"),
        reg.gauge("luqr_cache_bytes", {},
                  "Bytes currently cached, summed over all caches"),
        reg.gauge("luqr_cache_entries", {},
                  "Entries currently cached, summed over all caches"),
    };
  }();
  return *o;
}

}  // namespace

bool matrices_equal(const Matrix<double>& a, const Matrix<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const std::size_t bytes =
      static_cast<std::size_t>(a.rows()) * a.cols() * sizeof(double);
  return bytes == 0 || std::memcmp(a.data(), b.data(), bytes) == 0;
}

std::uint64_t FactorizationCache::content_hash(const Matrix<double>& a) {
  // FNV-1a, 64-bit, one word per element (not per byte — hashing sits on
  // the cache-hit critical path, and an n^2 payload at a byte per round
  // would cost more than the solve it saves). Bitwise content keying is
  // exactly right here: the factorization is a function of the bits, and a
  // matrix that differs in the last ulp must miss.
  //
  // Four independent FNV lanes, folded at the end: a single lane is a
  // serial xor-multiply dependency chain (~5 cycles per word), which for an
  // n = 64 payload costs more than the batched solve it keys. The lanes
  // break the chain so the multiplies pipeline. Keys are in-memory only, so
  // changing the hash value is free.
  const std::uint64_t prime = 1099511628211ull;
  std::uint64_t lane[4] = {14695981039346656037ull, 0x9e3779b97f4a7c15ull,
                           0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull};
  lane[0] = (lane[0] ^ static_cast<std::uint64_t>(a.rows())) * prime;
  lane[1] = (lane[1] ^ static_cast<std::uint64_t>(a.cols())) * prime;
  const double* p = a.data();
  const std::size_t count = static_cast<std::size_t>(a.rows()) * a.cols();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, sizeof(w));  // bit patterns of four elements
    lane[0] = (lane[0] ^ w[0]) * prime;
    lane[1] = (lane[1] ^ w[1]) * prime;
    lane[2] = (lane[2] ^ w[2]) * prime;
    lane[3] = (lane[3] ^ w[3]) * prime;
  }
  for (; i < count; ++i) {
    std::uint64_t w;
    std::memcpy(&w, p + i, sizeof(w));
    lane[i % 4] = (lane[i % 4] ^ w) * prime;
  }
  std::uint64_t h = lane[0];
  h = (h ^ lane[1]) * prime;
  h = (h ^ lane[2]) * prime;
  h = (h ^ lane[3]) * prime;
  return h;
}

FactorizationCache::~FactorizationCache() {
  // Give back this cache's contribution to the additive process-wide
  // gauges; without this, every retired service leaves phantom bytes in
  // luqr_cache_bytes.
  clear();
}

bool FactorizationCache::matches(const Entry& e, std::uint64_t hash,
                                 const Matrix<double>& a,
                                 const std::string& config_fp) {
  return e.hash == hash && e.config_fp == config_fp &&
         matrices_equal(e.fac->matrix(), a);
}

std::shared_ptr<const core::Factorization> FactorizationCache::find(
    const Matrix<double>& a, const std::string& config_fp) {
  return find_hashed(a, config_fp, hash_(a));
}

std::shared_ptr<const core::Factorization> FactorizationCache::find_hashed(
    const Matrix<double>& a, const std::string& config_fp, std::uint64_t h,
    bool count_miss) {
  std::lock_guard<std::mutex> lock(mu_);
  auto range = index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (!matches(*it->second, h, a, config_fp)) continue;  // hash collision
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.hits;
    cache_obs().hits.add(1);
    return it->second->fac;
  }
  if (count_miss) {
    ++stats_.misses;
    cache_obs().misses.add(1);
  }
  return nullptr;
}

void FactorizationCache::insert(const Matrix<double>& a,
                                const std::string& config_fp,
                                std::shared_ptr<const core::Factorization> fac) {
  insert_hashed(a, config_fp, hash_(a), std::move(fac));
}

void FactorizationCache::insert_hashed(
    const Matrix<double>& a, const std::string& config_fp, std::uint64_t h,
    std::shared_ptr<const core::Factorization> fac) {
  if (fac == nullptr) return;
  const std::size_t bytes = fac->memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_) {
    ++stats_.oversize_rejects;
    cache_obs().oversize.add(1);
    return;
  }
  auto range = index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (!matches(*it->second, h, a, config_fp)) continue;
    // Already cached (e.g. the benign duplicate-factor race): keep the
    // first copy but refresh its recency — it was just used.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (stats_.bytes + bytes > budget_ && !lru_.empty()) evict_lru_locked();
  lru_.push_front(Entry{h, config_fp, std::move(fac), bytes});
  index_.emplace(h, lru_.begin());
  stats_.bytes += bytes;
  ++stats_.entries;
  CacheObs& obs = cache_obs();
  obs.inserts.add(1);
  obs.bytes.add(static_cast<double>(bytes));
  obs.entries.add(1.0);
}

void FactorizationCache::evict_lru_locked() {
  auto victim = std::prev(lru_.end());
  auto range = index_.equal_range(victim->hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == victim) {
      index_.erase(it);
      break;
    }
  }
  stats_.bytes -= victim->bytes;
  --stats_.entries;
  ++stats_.evictions;
  CacheObs& obs = cache_obs();
  obs.evictions.add(1);
  obs.bytes.add(-static_cast<double>(victim->bytes));
  obs.entries.add(-1.0);
  lru_.erase(victim);
}

bool FactorizationCache::erase(const Matrix<double>& a,
                               const std::string& config_fp) {
  return erase_hashed(a, config_fp, hash_(a));
}

bool FactorizationCache::erase_hashed(const Matrix<double>& a,
                                      const std::string& config_fp,
                                      std::uint64_t h) {
  std::lock_guard<std::mutex> lock(mu_);
  auto range = index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (!matches(*it->second, h, a, config_fp)) continue;
    auto victim = it->second;
    index_.erase(it);
    stats_.bytes -= victim->bytes;
    --stats_.entries;
    CacheObs& obs = cache_obs();
    obs.bytes.add(-static_cast<double>(victim->bytes));
    obs.entries.add(-1.0);
    lru_.erase(victim);
    return true;
  }
  return false;
}

void FactorizationCache::evict_to(std::size_t target_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  while (stats_.bytes > target_bytes && !lru_.empty()) evict_lru_locked();
}

CacheStats FactorizationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.byte_budget = budget_;
  return s;
}

void FactorizationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  CacheObs& obs = cache_obs();
  obs.bytes.add(-static_cast<double>(stats_.bytes));
  obs.entries.add(-static_cast<double>(lru_.size()));
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace luqr::serve
