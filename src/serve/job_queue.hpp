// Bounded, closable MPMC job queue with strict-priority lanes — the
// admission side of the solve service.
//
// Clients push into one of three FIFO lanes; pop() always drains the
// highest non-empty lane first, so an Interactive job entering a backed-up
// queue overtakes every queued Batch job before the engine even sees it
// (the second priority level — the first is the engine's own ready lanes).
//
// Capacity counts all lanes together and is what turns overload into
// backpressure instead of unbounded memory growth: push() blocks until
// space frees up, try_push() fails fast (the reject-when-full policy).
// Priorities order jobs *inside* the queue; pushers blocked at admission
// race equally for freed slots (per-lane capacity reservation would be the
// next step if sustained batch floods must never delay interactive
// admission — size queue_capacity generously relative to batch burst size).
// close() wakes everyone; a closed queue rejects pushes but keeps serving
// pop() until drained, so shutdown completes the work already accepted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace luqr::serve {

template <typename T>
class JobQueue {
 public:
  static constexpr int kLanes = 3;

  explicit JobQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocking push (backpressure). Returns false only when the queue was
  /// closed (either before the call or while waiting for space).
  bool push(T item, int lane) {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    lanes_[clamp(lane)].push_back(std::move(item));
    ++size_;
    lock.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item, int lane) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      lanes_[clamp(lane)].push_back(std::move(item));
      ++size_;
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocking pop, highest lane first. Returns false once closed and fully
  /// drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    for (int lane = kLanes - 1; lane >= 0; --lane) {
      if (lanes_[lane].empty()) continue;
      out = std::move(lanes_[lane].front());
      lanes_[lane].pop_front();
      --size_;
      break;
    }
    lock.unlock();
    space_cv_.notify_one();
    return true;
  }

  /// Stop accepting work; wakes blocked pushers (they fail) and poppers
  /// (they drain the remainder, then fail).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  static int clamp(int lane) { return lane < 0 ? 0 : lane >= kLanes ? kLanes - 1 : lane; }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable item_cv_;   // pop side: work available / closed
  std::condition_variable space_cv_;  // push side: space available / closed
  std::deque<T> lanes_[kLanes];
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace luqr::serve
