#include "common/error.hpp"
#include "sim/timing_model.hpp"

namespace luqr::sim {

double TimingModel::efficiency(Kernel k) {
  switch (k) {
    // LU-side kernels: GEMM near peak, solves close behind, the panel
    // factorization memory-bound.
    case Kernel::Gemm: return 0.88;
    case Kernel::Trsm: return 0.75;
    case Kernel::Swptrsm: return 0.70;
    case Kernel::GetrfTile: return 0.45;
    case Kernel::GetrfPanel: return 0.32;
    // QR-side kernels: "more complex and much less tuned" (paper §VI).
    case Kernel::Geqrt: return 0.45;
    case Kernel::Unmqr: return 0.72;
    case Kernel::Tsqrt: return 0.42;
    case Kernel::Tsmqr: return 0.70;
    case Kernel::Ttqrt: return 0.35;
    case Kernel::Ttmqr: return 0.58;
    // Incremental pivoting kernels (PLASMA dtstrf/dssssm class).
    case Kernel::Gessm: return 0.65;
    case Kernel::Tstrf: return 0.75;
    case Kernel::Ssssm: return 0.78;
    // Memory / latency tasks have no flops; efficiency unused.
    case Kernel::Backup:
    case Kernel::Restore:
    case Kernel::Criterion:
    case Kernel::PivotSearch:
      return 1.0;
  }
  return 1.0;
}

double TimingModel::flops(Kernel k, int nb, int d) {
  const double nb3 = static_cast<double>(nb) * nb * nb;
  switch (k) {
    case Kernel::GetrfTile: return (2.0 / 3.0) * nb3;
    // Stacked m x nb trapezoid, m = d*nb: n^2 (m - n/3).
    case Kernel::GetrfPanel: return (d - 1.0 / 3.0) * nb3;
    case Kernel::Swptrsm: return nb3;
    case Kernel::Trsm: return nb3;
    case Kernel::Gemm: return 2.0 * nb3;
    // Table I: GEQRT 4/3, TSQRT 2, UNMQR 2, TSMQR 4 (so a flat-TS QR step
    // totals 4/3 + 2(n-1) + 2(n-1) + 4(n-1)^2 — exactly twice the LU step).
    case Kernel::Geqrt: return (4.0 / 3.0) * nb3;
    case Kernel::Unmqr: return 2.0 * nb3;
    case Kernel::Tsqrt: return 2.0 * nb3;
    case Kernel::Tsmqr: return 4.0 * nb3;
    // Triangle-triangle kernels touch ~half the data.
    case Kernel::Ttqrt: return nb3;
    case Kernel::Ttmqr: return 2.0 * nb3;
    case Kernel::Gessm: return nb3;
    case Kernel::Tstrf: return nb3;
    case Kernel::Ssssm: return 2.5 * nb3;
    case Kernel::Backup:
    case Kernel::Restore:
    case Kernel::Criterion:
    case Kernel::PivotSearch:
      return 0.0;
  }
  return 0.0;
}

double TimingModel::duration(Kernel k, int nb, const Platform& pl, int d,
                             int cores) {
  const double bytes_per_tile = 8.0 * nb * nb;
  switch (k) {
    case Kernel::Backup:
    case Kernel::Restore:
      // Node-local memcpy of d tiles.
      return d * bytes_per_tile / pl.mem_bw_bps;
    case Kernel::Criterion:
      // Local norm reductions (O(nb^2) per panel tile, memory-bound) plus
      // the Bruck all-reduce over the grid rows sharing the panel.
      return d * bytes_per_tile / pl.mem_bw_bps +
             2.0 * pl.latency_s * (pl.p > 1 ? pl.p : 1);
    case Kernel::PivotSearch:
      // One cross-node max-reduce + index broadcast per pivot column.
      return 2.0 * pl.latency_s;
    default: {
      const double f = flops(k, nb, d);
      const double rate = efficiency(k) * pl.core_peak_gflops * 1e9 *
                          (cores > 1 ? cores : 1);
      LUQR_REQUIRE(rate > 0.0, "timing model: zero rate");
      return f / rate;
    }
  }
}

}  // namespace luqr::sim
