// Platform model for the discrete-event simulator.
//
// Substitutes for the paper's testbed (DESIGN.md substitution table):
// Dancer — 16 nodes (4x4 grid), 2 x Intel Westmere-EP E5606 @ 2.13 GHz
// (8 cores/node), Infiniband 10G. Theoretical peak 1091 GFLOP/s =
// 16 nodes x 8 cores x 8.52 GFLOP/s/core (2.13 GHz x 4 DP flops/cycle).
#pragma once

namespace luqr::sim {

/// Distributed-memory machine: p x q grid of nodes, each with identical
/// cores, connected by a latency/bandwidth network.
struct Platform {
  int p = 4;                      ///< grid rows
  int q = 4;                      ///< grid cols
  int cores_per_node = 8;
  double core_peak_gflops = 8.52; ///< per-core double-precision peak
  double latency_s = 10e-6;      ///< network latency per message
  double bandwidth_bps = 1.25e9; ///< network bandwidth, bytes/s (IB 10G)
  double mem_bw_bps = 8.0e9;     ///< node-local copy bandwidth (backup/restore)

  int nodes() const { return p * q; }
  double peak_gflops() const { return nodes() * cores_per_node * core_peak_gflops; }

  /// 2D block-cyclic owner of tile (i, j).
  int owner(int i, int j) const { return (i % p) * q + (j % q); }
  int row_rank(int i) const { return i % p; }

  /// The paper's machine.
  static Platform dancer() { return Platform{}; }

  /// Dancer re-gridded (e.g. 16x1 for the special-matrix experiments).
  static Platform dancer_grid(int p_, int q_) {
    Platform pl;
    pl.p = p_;
    pl.q = q_;
    return pl;
  }
};

}  // namespace luqr::sim
