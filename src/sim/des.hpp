// Discrete-event simulation core: a task DAG executed by a list scheduler
// over the platform's cores, with a latency/bandwidth charge on every
// cross-node data edge.
//
// Model:
//  - a task occupies one core of its node for `duration` seconds (the
//    multi-core panel kernel is modelled via a shortened duration);
//  - a task becomes ready when every predecessor is done and its outputs
//    have arrived: an edge from a task on another node costs
//    latency + bytes/bandwidth (links are contention-free — adequate for
//    shape-level reproduction; see DESIGN.md);
//  - among ready tasks, the earliest-ready one is scheduled on the earliest
//    free core of its node (greedy list scheduling, the same class of
//    scheduler as PaRSEC's).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/platform.hpp"
#include "sim/timing_model.hpp"

namespace luqr::sim {

/// Node in the simulated task DAG.
struct SimTask {
  Kernel kind = Kernel::Gemm;
  int node = 0;          ///< executing node id
  double duration = 0.0; ///< seconds on one core
  double out_bytes = 0.0;///< payload shipped to consumers on other nodes
  std::vector<int> preds;
};

/// Growable task DAG.
class SimGraph {
 public:
  /// Add a task; preds must be ids returned by earlier add() calls (or -1
  /// entries, which are ignored — convenient for "no producer yet").
  int add(Kernel kind, int node, double duration, std::vector<int> preds,
          double out_bytes);

  const std::vector<SimTask>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }

  /// Sum of modelled kernel flops (for true-GFLOP/s accounting).
  double total_flops() const { return total_flops_; }
  void account_flops(double f) { total_flops_ += f; }

 private:
  std::vector<SimTask> tasks_;
  double total_flops_ = 0.0;
};

/// Simulation outcome.
struct SimResult {
  double makespan_s = 0.0;
  std::uint64_t task_count = 0;
  double total_flops = 0.0;
  double comm_bytes = 0.0;   ///< total cross-node traffic
  std::uint64_t messages = 0;///< number of cross-node transfers
};

/// Run the list-scheduling simulation.
SimResult simulate_graph(const SimGraph& graph, const Platform& platform);

}  // namespace luqr::sim
