// Per-kernel cost model.
//
// Flop counts follow Table I of the paper (in units of nb^3): an LU step
// costs 2/3 + 2(n-1) + 2(n-1)^2 and a QR step exactly twice that. The
// efficiency factors encode the paper's empirical kernel ranking (§VI):
// GEMM runs near peak, TRSM close behind, LU panel kernels are memory-bound,
// and the QR kernels are "more complex and much less tuned" — TSMQR below
// GEMM, the triangle-triangle kernels lowest. Absolute rates are a
// calibration aid; the reproduced quantity is the *shape* of Table II /
// Figure 2 (see EXPERIMENTS.md).
#pragma once

#include "sim/platform.hpp"

namespace luqr::sim {

enum class Kernel {
  GetrfTile,    ///< LU of the diagonal tile
  GetrfPanel,   ///< stacked LU of d tiles (domain or whole panel)
  Swptrsm,      ///< row swaps + unit-lower solve on a row-k tile
  Trsm,         ///< eliminate kernel
  Gemm,         ///< trailing update
  Geqrt, Unmqr, Tsqrt, Tsmqr, Ttqrt, Ttmqr,  ///< QR kernels
  Gessm, Tstrf, Ssssm,                        ///< incremental pivoting
  Backup, Restore,  ///< decision-process memory tasks (no flops)
  Criterion,        ///< norm reductions + all-reduce (latency-bound)
  PivotSearch,      ///< LUPP per-column cross-node pivot reduction
};

/// Cost model mapping (kernel, nb, multiplicity) to seconds on one core.
struct TimingModel {
  /// Fraction of core peak the kernel sustains.
  static double efficiency(Kernel k);

  /// Floating-point operations of one kernel instance. `d` is the stacked
  /// tile count for GetrfPanel (1 elsewhere).
  static double flops(Kernel k, int nb, int d = 1);

  /// Wall-clock seconds of one instance on `cores` cooperating cores of the
  /// platform (cores > 1 only for the multi-threaded recursive panel kernel
  /// the paper borrows from PLASMA).
  static double duration(Kernel k, int nb, const Platform& pl, int d = 1,
                         int cores = 1);
};

}  // namespace luqr::sim
