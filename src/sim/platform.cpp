// Platform is header-only; this translation unit anchors the module.
#include "sim/platform.hpp"
