// Task-DAG builders: one per algorithm of the paper's evaluation.
//
// Each builder emits, tile by tile, the same task structure the real
// drivers execute (panel factor, swaps/applies, eliminations, trailing
// updates — plus, for the hybrid, the Backup / Criterion / Restore
// decision-process tasks whose overhead §V-B measures), mapped onto the
// 2D block-cyclic grid so the simulator charges inter-node messages
// exactly where MPI traffic occurs.
#pragma once

#include <vector>

#include "hqr/trees.hpp"
#include "sim/des.hpp"

namespace luqr::sim {

/// Problem/configuration description shared by all builders.
struct DagConfig {
  int n = 32;              ///< tiles per row/column
  int nb = 240;            ///< tile order
  hqr::TreeConfig tree{};  ///< QR reduction trees (greedy local / fibonacci dist)
  int panel_cores = 4;     ///< cores cooperating in the recursive panel kernel
};

/// Hybrid LU-QR: `lu_step[k]` says whether step k runs the LU or the QR
/// path; the Backup / Criterion / (Restore) tasks are always present (the
/// decision process is paid on every step — the ~10% overhead of §V-B).
SimGraph build_luqr_dag(const DagConfig& cfg, const Platform& pl,
                        const std::vector<bool>& lu_step);

/// LU without cross-tile pivoting (diagonal-tile GETRF only).
SimGraph build_lu_nopiv_dag(const DagConfig& cfg, const Platform& pl);

/// LU with partial pivoting across the whole panel (ScaLAPACK-style):
/// serialized panel with per-column cross-node pivot searches, and
/// whole-column swap joins before every trailing update column.
SimGraph build_lupp_dag(const DagConfig& cfg, const Platform& pl);

/// LU with incremental pairwise pivoting (TSTRF chain down each panel).
SimGraph build_lu_incpiv_dag(const DagConfig& cfg, const Platform& pl);

/// Pure hierarchical QR (no decision process).
SimGraph build_hqr_dag(const DagConfig& cfg, const Platform& pl);

/// Deterministic, evenly spread LU/QR decision vector with the given LU
/// fraction (used to sweep Table II / Figure 2 operating points).
std::vector<bool> spread_lu_steps(int n, double lu_fraction);

}  // namespace luqr::sim
