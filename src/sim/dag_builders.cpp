#include <algorithm>

#include "common/error.hpp"
#include "sim/dag_builders.hpp"
#include "tile/process_grid.hpp"

namespace luqr::sim {

namespace {

// Shared builder state: the growing graph plus a per-tile "last producer"
// map that turns tile accesses into DAG edges (the same superscalar
// inference the real runtime performs).
class Builder {
 public:
  Builder(const DagConfig& cfg, const Platform& pl)
      : cfg_(cfg), pl_(pl), grid_(pl.p, pl.q),
        prod_(static_cast<std::size_t>(cfg.n) * cfg.n, -1) {}

  int& prod(int i, int j) {
    return prod_[static_cast<std::size_t>(j) * cfg_.n + i];
  }

  // Add a kernel task; duration from the timing model, payload one tile.
  int add(Kernel k, int node, std::vector<int> preds, int d = 1, int cores = 1,
          double extra_duration = 0.0) {
    const double dur =
        TimingModel::duration(k, cfg_.nb, pl_, d, cores) + extra_duration;
    g_.account_flops(TimingModel::flops(k, cfg_.nb, d));
    return g_.add(k, node, dur, std::move(preds), tile_bytes());
  }

  double tile_bytes() const { return 8.0 * cfg_.nb * cfg_.nb; }
  int node(int i, int j) const { return pl_.owner(i, j); }
  const ProcessGrid& grid() const { return grid_; }
  SimGraph take() { return std::move(g_); }

  // ---- shared step fragments ------------------------------------------

  // LU elimination step at k over the given domain rows; `gate` (if >= 0)
  // must precede every task of the step (the broadcast decision).
  void lu_step(int k, const std::vector<int>& domain_rows, int panel_task,
               int gate) {
    const int n = cfg_.n;
    std::vector<bool> in_domain(static_cast<std::size_t>(n), false);
    for (int r : domain_rows) in_domain[static_cast<std::size_t>(r)] = true;
    // Swap + apply per trailing column (domain rows live on one grid row, so
    // the swaps are node-local; the task writes every domain tile of col j).
    for (int j = k + 1; j < n; ++j) {
      std::vector<int> preds{panel_task, gate};
      for (int r : domain_rows) preds.push_back(prod(r, j));
      const int t = add(Kernel::Swptrsm, node(k, j), std::move(preds));
      for (int r : domain_rows) prod(r, j) = t;
    }
    // Eliminate non-domain rows.
    for (int i = k + 1; i < n; ++i) {
      if (in_domain[static_cast<std::size_t>(i)]) continue;
      prod(i, k) = add(Kernel::Trsm, node(i, k), {panel_task, gate, prod(i, k)});
    }
    // Trailing update.
    for (int i = k + 1; i < n; ++i)
      for (int j = k + 1; j < n; ++j)
        prod(i, j) = add(Kernel::Gemm, node(i, j),
                         {prod(i, k), prod(k, j), prod(i, j)});
  }

  // QR elimination step at k (HQR trees); `gate` as above.
  void qr_step(int k, int gate) {
    const int n = cfg_.n;
    const auto domains = grid_.panel_domains(k, n);
    const auto list = hqr::elimination_list(domains, cfg_.tree);
    std::vector<bool> needs_geqrt(static_cast<std::size_t>(n), false);
    for (const auto& e : list) {
      needs_geqrt[static_cast<std::size_t>(e.killer)] = true;
      if (e.kernel == hqr::ElimKernel::TT)
        needs_geqrt[static_cast<std::size_t>(e.killed)] = true;
    }
    if (list.empty()) needs_geqrt[static_cast<std::size_t>(k)] = true;
    for (int row = k; row < n; ++row) {
      if (!needs_geqrt[static_cast<std::size_t>(row)]) continue;
      const int f = add(Kernel::Geqrt, node(row, k), {prod(row, k), gate});
      prod(row, k) = f;
      for (int j = k + 1; j < n; ++j)
        prod(row, j) = add(Kernel::Unmqr, node(row, j), {f, prod(row, j)});
    }
    for (const auto& e : list) {
      const bool ts = e.kernel == hqr::ElimKernel::TS;
      const int f = add(ts ? Kernel::Tsqrt : Kernel::Ttqrt, node(e.killed, k),
                        {prod(e.killer, k), prod(e.killed, k), gate});
      prod(e.killer, k) = f;
      prod(e.killed, k) = f;
      for (int j = k + 1; j < n; ++j) {
        const int u = add(ts ? Kernel::Tsmqr : Kernel::Ttmqr, node(e.killed, j),
                          {f, prod(e.killer, j), prod(e.killed, j)});
        prod(e.killer, j) = u;
        prod(e.killed, j) = u;
      }
    }
  }

 private:
  DagConfig cfg_;
  const Platform& pl_;
  ProcessGrid grid_;
  SimGraph g_;
  std::vector<int> prod_;
};

}  // namespace

SimGraph build_luqr_dag(const DagConfig& cfg, const Platform& pl,
                        const std::vector<bool>& lu_step) {
  LUQR_REQUIRE(static_cast<int>(lu_step.size()) == cfg.n,
               "build_luqr_dag: decision vector size mismatch");
  Builder b(cfg, pl);
  for (int k = 0; k < cfg.n; ++k) {
    const auto domain_rows = b.grid().diagonal_domain(k, cfg.n);
    const int d = static_cast<int>(domain_rows.size());
    const int diag_node = b.node(k, k);
    // Backup the domain panel tiles (node-local memcpy).
    std::vector<int> bpreds;
    for (int r : domain_rows) bpreds.push_back(b.prod(r, k));
    const int backup = b.add(Kernel::Backup, diag_node, std::move(bpreds), d);
    // Factor the stacked domain panel (multi-threaded recursive kernel).
    std::vector<int> fpreds{backup};
    for (int r : domain_rows) fpreds.push_back(b.prod(r, k));
    const int factor = b.add(Kernel::GetrfPanel, diag_node, std::move(fpreds), d,
                             cfg.panel_cores);
    // Criterion: local reductions of every panel tile + all-reduce.
    std::vector<int> cpreds{factor};
    for (int i = k; i < cfg.n; ++i) cpreds.push_back(b.prod(i, k));
    const int crit = b.add(Kernel::Criterion, diag_node, std::move(cpreds),
                           cfg.n - k);
    if (lu_step[static_cast<std::size_t>(k)]) {
      for (int r : domain_rows) b.prod(r, k) = factor;
      b.lu_step(k, domain_rows, factor, crit);
    } else {
      // Restore, then run the QR step on the original panel.
      const int restore = b.add(Kernel::Restore, diag_node, {crit, factor}, d);
      for (int r : domain_rows) b.prod(r, k) = restore;
      b.qr_step(k, crit);
    }
  }
  return b.take();
}

SimGraph build_lu_nopiv_dag(const DagConfig& cfg, const Platform& pl) {
  Builder b(cfg, pl);
  for (int k = 0; k < cfg.n; ++k) {
    const int factor =
        b.add(Kernel::GetrfTile, b.node(k, k), {b.prod(k, k)});
    b.prod(k, k) = factor;
    b.lu_step(k, {k}, factor, -1);
  }
  return b.take();
}

SimGraph build_lupp_dag(const DagConfig& cfg, const Platform& pl) {
  Builder b(cfg, pl);
  for (int k = 0; k < cfg.n; ++k) {
    const int n = cfg.n;
    // The whole panel is factored with nb per-column cross-node pivot
    // searches serializing it (this is LUPP's distributed bottleneck).
    std::vector<int> fpreds;
    for (int i = k; i < n; ++i) fpreds.push_back(b.prod(i, k));
    const double pivot_lat =
        cfg.nb * TimingModel::duration(Kernel::PivotSearch, cfg.nb, pl);
    // The distributed panel proceeds column by column with a cross-node
    // pivot reduction between columns, so node-level parallelism is wasted
    // on it: one core's rate plus nb pivot-search round trips.
    const int factor = b.add(Kernel::GetrfPanel, b.node(k, k), std::move(fpreds),
                             n - k, /*cores=*/2, pivot_lat);
    for (int i = k; i < n; ++i) b.prod(i, k) = factor;
    // Swaps may touch any panel row, so each trailing column joins on every
    // row of the column before its updates may run (pdlaswp semantics).
    for (int j = k + 1; j < n; ++j) {
      std::vector<int> spreds{factor};
      for (int i = k; i < n; ++i) spreds.push_back(b.prod(i, j));
      const int swap = b.add(Kernel::Swptrsm, b.node(k, j), std::move(spreds));
      for (int i = k; i < n; ++i) b.prod(i, j) = swap;
    }
    for (int i = k + 1; i < n; ++i)
      for (int j = k + 1; j < n; ++j)
        b.prod(i, j) = b.add(Kernel::Gemm, b.node(i, j),
                             {b.prod(i, k), b.prod(k, j), b.prod(i, j)});
  }
  return b.take();
}

SimGraph build_lu_incpiv_dag(const DagConfig& cfg, const Platform& pl) {
  Builder b(cfg, pl);
  const int n = cfg.n;
  for (int k = 0; k < n; ++k) {
    const int f0 = b.add(Kernel::GetrfTile, b.node(k, k), {b.prod(k, k)});
    b.prod(k, k) = f0;
    for (int j = k + 1; j < n; ++j)
      b.prod(k, j) = b.add(Kernel::Gessm, b.node(k, j), {f0, b.prod(k, j)});
    for (int i = k + 1; i < n; ++i) {
      // The TSTRF chain refines the diagonal factor row block by row block —
      // the panel is inherently serial.
      const int f = b.add(Kernel::Tstrf, b.node(i, k),
                          {b.prod(k, k), b.prod(i, k)});
      b.prod(k, k) = f;
      b.prod(i, k) = f;
      for (int j = k + 1; j < n; ++j) {
        const int s = b.add(Kernel::Ssssm, b.node(i, j),
                            {f, b.prod(k, j), b.prod(i, j)});
        b.prod(k, j) = s;
        b.prod(i, j) = s;
      }
    }
  }
  return b.take();
}

SimGraph build_hqr_dag(const DagConfig& cfg, const Platform& pl) {
  Builder b(cfg, pl);
  for (int k = 0; k < cfg.n; ++k) b.qr_step(k, -1);
  return b.take();
}

std::vector<bool> spread_lu_steps(int n, double lu_fraction) {
  LUQR_REQUIRE(lu_fraction >= 0.0 && lu_fraction <= 1.0,
               "lu fraction must be in [0, 1]");
  std::vector<bool> steps(static_cast<std::size_t>(n), false);
  double acc = 0.0;
  for (int k = 0; k < n; ++k) {
    acc += lu_fraction;
    if (acc >= 1.0 - 1e-12) {
      steps[static_cast<std::size_t>(k)] = true;
      acc -= 1.0;
    }
  }
  return steps;
}

}  // namespace luqr::sim
