#include "common/error.hpp"
#include "sim/simulate.hpp"

namespace luqr::sim {

AlgoReport simulate_algorithm(Algo algo, const DagConfig& cfg, const Platform& pl,
                              const std::vector<bool>& lu_steps) {
  AlgoReport report;
  report.algo = algo;

  SimGraph graph;
  switch (algo) {
    case Algo::LuNoPiv:
      graph = build_lu_nopiv_dag(cfg, pl);
      report.lu_fraction = 1.0;
      break;
    case Algo::LuIncPiv:
      graph = build_lu_incpiv_dag(cfg, pl);
      report.lu_fraction = 1.0;
      break;
    case Algo::Lupp:
      graph = build_lupp_dag(cfg, pl);
      report.lu_fraction = 1.0;
      break;
    case Algo::Hqr:
      graph = build_hqr_dag(cfg, pl);
      report.lu_fraction = 0.0;
      break;
    case Algo::LuQr: {
      LUQR_REQUIRE(static_cast<int>(lu_steps.size()) == cfg.n,
                   "simulate_algorithm: LuQr needs a decision vector");
      graph = build_luqr_dag(cfg, pl, lu_steps);
      int lu = 0;
      for (bool s : lu_steps) lu += s ? 1 : 0;
      report.lu_fraction = cfg.n == 0 ? 1.0 : static_cast<double>(lu) / cfg.n;
      break;
    }
  }

  report.raw = simulate_graph(graph, pl);
  report.seconds = report.raw.makespan_s;

  const double bigN = static_cast<double>(cfg.n) * cfg.nb;
  const double fake_flops = (2.0 / 3.0) * bigN * bigN * bigN;
  const double f = report.lu_fraction;
  const double true_flops =
      ((2.0 / 3.0) * f + (4.0 / 3.0) * (1.0 - f)) * bigN * bigN * bigN;
  if (report.seconds > 0.0) {
    report.gflops_fake = fake_flops / report.seconds / 1e9;
    report.gflops_true = true_flops / report.seconds / 1e9;
  }
  report.pct_peak_fake = 100.0 * report.gflops_fake / pl.peak_gflops();
  report.pct_peak_true = 100.0 * report.gflops_true / pl.peak_gflops();
  return report;
}

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::LuNoPiv: return "LU NoPiv";
    case Algo::LuIncPiv: return "LU IncPiv";
    case Algo::LuQr: return "LUQR";
    case Algo::Hqr: return "HQR";
    case Algo::Lupp: return "LUPP";
  }
  return "?";
}

}  // namespace luqr::sim
