// High-level simulation API: one call per (algorithm, problem, platform)
// producing the quantities Table II reports.
//
// "Fake" GFLOP/s normalizes by 2/3 N^3 regardless of algorithm (the paper's
// normalized performance, §V-A); "true" GFLOP/s divides the actually
// executed (2/3 f_LU + 4/3 (1 - f_LU)) N^3 flops by the same time.
#pragma once

#include <string>
#include <vector>

#include "sim/dag_builders.hpp"

namespace luqr::sim {

enum class Algo { LuNoPiv, LuIncPiv, LuQr, Hqr, Lupp };

/// Table II row, simulated.
struct AlgoReport {
  Algo algo = Algo::LuQr;
  double lu_fraction = 1.0;   ///< f_LU (1 for the LU baselines, 0 for HQR)
  double seconds = 0.0;
  double gflops_fake = 0.0;
  double gflops_true = 0.0;
  double pct_peak_fake = 0.0;
  double pct_peak_true = 0.0;
  SimResult raw;
};

/// Simulate one algorithm on an N = n * nb problem. For Algo::LuQr,
/// `lu_steps` gives the per-step decision (use spread_lu_steps() to realize
/// a target fraction, or feed the decision trace of a real run); it is
/// ignored for the other algorithms.
AlgoReport simulate_algorithm(Algo algo, const DagConfig& cfg, const Platform& pl,
                              const std::vector<bool>& lu_steps = {});

std::string algo_name(Algo a);

}  // namespace luqr::sim
