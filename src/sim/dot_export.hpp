// Graphviz export of simulated task DAGs — regenerates the paper's
// Figure 1 ("Dataflow of one step of the algorithm") for any configuration:
// the Backup-Panel -> LU-On-Panel -> Criterion gate, with the LU path's
// SWPTRSM/TRSM/GEMM fan-out or the QR path's Restore + elimination tree.
#pragma once

#include <string>

#include "sim/des.hpp"

namespace luqr::sim {

/// Render the graph in Graphviz DOT syntax: one node per task (labelled
/// with its kernel, colored by family: LU kernels blue, QR kernels red,
/// decision-process tasks grey), one edge per dependency.
std::string to_dot(const SimGraph& graph, const std::string& title = "luqr dag");

/// Kernel display name ("GEMM", "TSQRT", ...).
std::string kernel_name(Kernel k);

}  // namespace luqr::sim
