#include <sstream>

#include "sim/dot_export.hpp"

namespace luqr::sim {

std::string kernel_name(Kernel k) {
  switch (k) {
    case Kernel::GetrfTile: return "GETRF";
    case Kernel::GetrfPanel: return "GETRF_PANEL";
    case Kernel::Swptrsm: return "SWPTRSM";
    case Kernel::Trsm: return "TRSM";
    case Kernel::Gemm: return "GEMM";
    case Kernel::Geqrt: return "GEQRT";
    case Kernel::Unmqr: return "UNMQR";
    case Kernel::Tsqrt: return "TSQRT";
    case Kernel::Tsmqr: return "TSMQR";
    case Kernel::Ttqrt: return "TTQRT";
    case Kernel::Ttmqr: return "TTMQR";
    case Kernel::Gessm: return "GESSM";
    case Kernel::Tstrf: return "TSTRF";
    case Kernel::Ssssm: return "SSSSM";
    case Kernel::Backup: return "BACKUP";
    case Kernel::Restore: return "RESTORE";
    case Kernel::Criterion: return "CRITERION";
    case Kernel::PivotSearch: return "PIVOT";
  }
  return "?";
}

namespace {

const char* kernel_color(Kernel k) {
  switch (k) {
    // Decision-process tasks (the paper's Figure 1 control layer).
    case Kernel::Backup:
    case Kernel::Restore:
    case Kernel::Criterion:
    case Kernel::PivotSearch:
      return "gray80";
    // LU family.
    case Kernel::GetrfTile:
    case Kernel::GetrfPanel:
    case Kernel::Swptrsm:
    case Kernel::Trsm:
    case Kernel::Gemm:
    case Kernel::Gessm:
    case Kernel::Tstrf:
    case Kernel::Ssssm:
      return "lightblue";
    // QR family.
    case Kernel::Geqrt:
    case Kernel::Unmqr:
    case Kernel::Tsqrt:
    case Kernel::Tsmqr:
    case Kernel::Ttqrt:
    case Kernel::Ttmqr:
      return "lightsalmon";
  }
  return "white";
}

}  // namespace

std::string to_dot(const SimGraph& graph, const std::string& title) {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n"
      << "  rankdir=TB;\n  node [style=filled, fontname=\"monospace\"];\n";
  const auto& tasks = graph.tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out << "  t" << i << " [label=\"" << kernel_name(tasks[i].kind) << "\\nn"
        << tasks[i].node << "\", fillcolor=" << kernel_color(tasks[i].kind)
        << "];\n";
  }
  for (std::size_t i = 0; i < tasks.size(); ++i)
    for (int p : tasks[i].preds) out << "  t" << p << " -> t" << i << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace luqr::sim
