#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "sim/des.hpp"

namespace luqr::sim {

int SimGraph::add(Kernel kind, int node, double duration, std::vector<int> preds,
                  double out_bytes) {
  preds.erase(std::remove(preds.begin(), preds.end(), -1), preds.end());
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  const int id = static_cast<int>(tasks_.size());
  for (int p : preds) LUQR_REQUIRE(p >= 0 && p < id, "simgraph: bad predecessor");
  tasks_.push_back({kind, node, duration, out_bytes, std::move(preds)});
  return id;
}

SimResult simulate_graph(const SimGraph& graph, const Platform& platform) {
  const auto& tasks = graph.tasks();
  const std::size_t n = tasks.size();
  SimResult result;
  result.task_count = n;
  result.total_flops = graph.total_flops();
  if (n == 0) return result;

  // Successor lists and indegrees.
  std::vector<std::vector<int>> succs(n);
  std::vector<int> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int p : tasks[i].preds) {
      succs[static_cast<std::size_t>(p)].push_back(static_cast<int>(i));
      ++indeg[i];
    }
  }

  std::vector<double> finish(n, 0.0);
  std::vector<double> ready_time(n, 0.0);

  // Per-node min-heap of core free times.
  std::vector<std::priority_queue<double, std::vector<double>, std::greater<>>>
      cores(static_cast<std::size_t>(platform.nodes()));
  for (auto& heap : cores)
    for (int c = 0; c < platform.cores_per_node; ++c) heap.push(0.0);

  // Ready heap ordered by ready time.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push({0.0, static_cast<int>(i)});

  std::size_t done = 0;
  while (!ready.empty()) {
    const auto [rt, id] = ready.top();
    ready.pop();
    const SimTask& t = tasks[static_cast<std::size_t>(id)];
    auto& heap = cores[static_cast<std::size_t>(t.node)];
    const double core_free = heap.top();
    heap.pop();
    const double start = std::max(rt, core_free);
    const double end = start + t.duration;
    heap.push(end);
    finish[static_cast<std::size_t>(id)] = end;
    result.makespan_s = std::max(result.makespan_s, end);
    ++done;

    for (int s : succs[static_cast<std::size_t>(id)]) {
      // Data arrival: cross-node edges pay latency + payload/bandwidth.
      double arrive = end;
      if (tasks[static_cast<std::size_t>(s)].node != t.node && t.out_bytes > 0.0) {
        arrive += platform.latency_s + t.out_bytes / platform.bandwidth_bps;
        result.comm_bytes += t.out_bytes;
        ++result.messages;
      }
      auto& rt_s = ready_time[static_cast<std::size_t>(s)];
      rt_s = std::max(rt_s, arrive);
      if (--indeg[static_cast<std::size_t>(s)] == 0)
        ready.push({rt_s, s});
    }
  }
  LUQR_REQUIRE(done == n, "simulate_graph: cycle in task graph");
  return result;
}

}  // namespace luqr::sim
