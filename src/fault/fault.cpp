#include "fault/fault.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace luqr::fault {

namespace detail {
std::atomic<FaultPlan*> g_plan{nullptr};
}

namespace {

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double unit_double(std::uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

}  // namespace

struct FaultPlan::Site {
  SiteSpec spec;
  std::uint64_t name_hash = 0;
  std::atomic<std::uint64_t> seen{0};
  std::atomic<std::uint64_t> fired{0};
  /// Per-site fire counter in the global registry (labels pin the site), so
  /// every injected fault shows up in the Prometheus/JSON exports next to
  /// the serve-layer resilience counters it provoked.
  obs::Counter* fires_total = nullptr;
};

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {}

FaultPlan::~FaultPlan() = default;

FaultPlan& FaultPlan::arm(SiteSpec spec) {
  LUQR_REQUIRE(detail::g_plan.load(std::memory_order_acquire) != this,
               "fault: arm sites before installing the plan");
  auto s = std::make_unique<Site>();
  s->name_hash = fnv1a(spec.name.c_str());
  s->fires_total = &obs::Registry::global().counter(
      "luqr_fault_fires_total", {{"site", spec.name}},
      "Injected faults fired, by site");
  s->spec = std::move(spec);
  sites_.push_back(std::move(s));
  return *this;
}

FaultPlan::Site* FaultPlan::find(const char* name) const {
  for (const auto& s : sites_)
    if (std::strcmp(s->spec.name.c_str(), name) == 0) return s.get();
  return nullptr;
}

bool FaultPlan::should_fire(const char* name) {
  Site* s = find(name);
  if (s == nullptr) return false;
  const std::uint64_t idx = s->seen.fetch_add(1, std::memory_order_relaxed);
  if (idx < s->spec.skip) return false;
  if (s->spec.probability < 1.0) {
    const std::uint64_t r = splitmix64(seed_ ^ s->name_hash ^ idx);
    if (unit_double(r) >= s->spec.probability) return false;
  }
  // Exact fire budget: claim a slot below max_fires or decline.
  std::uint64_t f = s->fired.load(std::memory_order_relaxed);
  do {
    if (f >= s->spec.max_fires) return false;
  } while (!s->fired.compare_exchange_weak(f, f + 1, std::memory_order_relaxed));
  s->fires_total->add(1);
  return true;
}

std::uint64_t FaultPlan::delay_us(const char* name) const {
  const Site* s = find(name);
  return s != nullptr ? s->spec.delay_us : 0;
}

std::uint64_t FaultPlan::occurrences(const char* name) const {
  const Site* s = find(name);
  return s != nullptr ? s->seen.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultPlan::fires(const char* name) const {
  const Site* s = find(name);
  return s != nullptr ? s->fired.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultPlan::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& s : sites_) total += s->fired.load(std::memory_order_relaxed);
  return total;
}

void install(FaultPlan* p) {
  detail::g_plan.store(p, std::memory_order_release);
}

void maybe_throw(const char* name) {
  if (should_fire(name))
    throw InjectedFault(std::string("fault: injected failure at ") + name);
}

void maybe_delay(const char* name) {
  FaultPlan* p = plan();
  if (p == nullptr || !p->should_fire(name)) return;
  const std::uint64_t us = p->delay_us(name);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace luqr::fault
