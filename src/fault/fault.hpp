// luqr::fault — deterministic, seed-driven fault injection.
//
// A FaultPlan arms named injection sites (probability, fire budget, skip
// window, and a per-site delay parameter) and is installed process-wide.
// Code at an injection site asks `fault::should_fire(site::kX)` — with no
// plan installed that is a single relaxed atomic load and a null test, so
// instrumented hot paths (workspace allocation, kernel dispatch, the engine
// task runner) pay nothing in production.
//
// Determinism: whether occurrence #i of a site fires is a pure function of
// (plan seed, site name, i). Each occurrence draws its index from a per-site
// atomic counter, so under a fixed thread interleaving the full fire pattern
// is reproducible from the seed, and the *number* of fires per site is
// reproducible regardless of interleaving (the decision depends only on the
// index, not on which thread drew it).
//
// Installation contract (same as kern::install_access_listener): install
// before the instrumented work starts, uninstall after it has quiesced. The
// plan is not reference-counted; the installer owns its lifetime.
//
//   fault::FaultPlan plan(seed);
//   plan.arm({fault::site::kServeTask, /*probability=*/0.05});
//   plan.arm({fault::site::kTaskStall, 0.01, /*max_fires=*/4, 0,
//             /*delay_us=*/5000});
//   {
//     fault::ScopedPlan guard(plan);
//     ... run the workload ...
//   }
//   plan.fires(fault::site::kServeTask);  // how many actually fired
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace luqr::fault {

/// Canonical site names. A site only fires where the code consults it; the
/// list documents every instrumented seam in one place.
namespace site {
/// kern::Workspace chunk growth throws std::bad_alloc.
inline constexpr const char* kWorkspaceAlloc = "workspace.alloc";
/// TileMatrix storage allocation throws std::bad_alloc.
inline constexpr const char* kTileAlloc = "tile.alloc";
/// kern::getrf dispatch reports a singular panel (info = 1) without
/// touching its input — upstream sees a genuine zero-pivot panel and takes
/// the QR fallback (or fails) exactly as it would for real singularity.
inline constexpr const char* kGetrfSingular = "kernel.getrf.singular";
/// kern::gemm dispatch poisons c(0,0) with a quiet NaN after the product.
inline constexpr const char* kGemmNan = "kernel.gemm.nan";
/// rt::Engine sleeps delay_us before running a task body (small jitter).
inline constexpr const char* kTaskDelay = "engine.task.delay";
/// rt::Engine sleeps delay_us before running a task body (long stall; pair
/// with a serve watchdog wall to exercise Degraded detection).
inline constexpr const char* kTaskStall = "engine.task.stall";
/// serve execution tasks throw InjectedFault (transient; retried).
inline constexpr const char* kServeTask = "serve.task.throw";
/// serve dispatcher abandons a dequeued job without executing or settling
/// it (the watchdog must recover it; only honored for jobs with a hard
/// wall, so an unguarded job can never hang forever).
inline constexpr const char* kServeDrop = "serve.job.drop";
/// serve dispatcher sleeps delay_us before dispatching a job.
inline constexpr const char* kServeDelay = "serve.job.delay";
}  // namespace site

/// Thrown by maybe_throw sites. Distinct from luqr::Error so failure
/// handlers can classify it as transient (retriable) rather than a
/// deterministic failure like singularity or validation.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

/// One armed site.
struct SiteSpec {
  std::string name;                    ///< a site:: constant (or test-local)
  double probability = 1.0;            ///< per-occurrence chance, [0, 1]
  std::uint64_t max_fires = ~std::uint64_t{0};  ///< total fire budget
  std::uint64_t skip = 0;              ///< never fire on the first N occurrences
  std::uint64_t delay_us = 0;          ///< sleep length for delay-class sites
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0);
  ~FaultPlan();

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Arm a site. Must happen before the plan is installed (the site table
  /// is immutable while hot paths read it).
  FaultPlan& arm(SiteSpec spec);

  /// Decide whether this occurrence of `name` fires. Thread-safe; an
  /// unarmed site never fires.
  bool should_fire(const char* name);

  std::uint64_t delay_us(const char* name) const;
  std::uint64_t occurrences(const char* name) const;
  std::uint64_t fires(const char* name) const;
  std::uint64_t total_fires() const;
  std::uint64_t seed() const { return seed_; }

 private:
  struct Site;
  Site* find(const char* name) const;

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Site>> sites_;
};

namespace detail {
extern std::atomic<FaultPlan*> g_plan;
}

/// The installed plan, or nullptr. One relaxed-ish load: the whole cost of
/// an injection site in production.
inline FaultPlan* plan() {
  return detail::g_plan.load(std::memory_order_acquire);
}

/// Install `p` process-wide (nullptr uninstalls). The caller must ensure
/// instrumented code is quiescent around install/uninstall.
void install(FaultPlan* p);

/// RAII install/uninstall around a test or harness region.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan& p) { install(&p); }
  ~ScopedPlan() { install(nullptr); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

inline bool should_fire(const char* name) {
  FaultPlan* p = plan();
  return p != nullptr && p->should_fire(name);
}

/// Allocation-path sites: throw std::bad_alloc when the site fires.
inline void maybe_alloc_fail(const char* name) {
  if (should_fire(name)) throw std::bad_alloc();
}

/// Throw-class sites: throw InjectedFault when the site fires.
void maybe_throw(const char* name);

/// Delay-class sites: sleep the site's delay_us when the site fires.
void maybe_delay(const char* name);

}  // namespace luqr::fault
