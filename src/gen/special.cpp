// The special matrices of Table III (Higham's Matrix Computation Toolbox /
// MATLAB gallery definitions), 1-based formulas transcribed to 0-based code.
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/detail.hpp"
#include "gen/generators.hpp"

namespace luqr::gen {

namespace {

using detail::random_gaussian;

// 1. house: A = I - beta v v^T, a single Householder reflection (orthogonal,
// symmetric) built from a random unit-ish vector.
Matrix<double> house(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  double vtv = 0.0;
  for (auto& x : v) {
    x = rng.gaussian();
    vtv += x * x;
  }
  const double beta = 2.0 / vtv;
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = (i == j ? 1.0 : 0.0) -
                beta * v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
  return a;
}

// 2. parter: Toeplitz, A(i,j) = 1/(i - j + 0.5); singular values near pi.
Matrix<double> parter(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = 1.0 / ((i + 1) - (j + 1) + 0.5);
  return a;
}

// 3. ris: A(i,j) = 0.5/(n - i - j + 1.5); eigenvalues cluster at +-pi/2.
Matrix<double> ris(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = 0.5 / (n - (i + 1) - (j + 1) + 1.5);
  return a;
}

// 4. condex: Cline & Rew 4x4 counter-example to condition estimators,
// embedded in the identity for n > 4 (gallery('condex', n, 1, theta)).
Matrix<double> condex(int n, double theta = 100.0) {
  LUQR_REQUIRE(n >= 4, "condex needs n >= 4");
  Matrix<double> a = Matrix<double>::identity(n);
  const double t = theta;
  const double block[4][4] = {{1.0, -1.0, -2.0 * t, 0.0},
                              {0.0, 1.0, t, -t},
                              {0.0, 1.0, 1.0 + t, -(t + 1.0)},
                              {0.0, 0.0, 0.0, t}};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) a(i, j) = block[i][j];
  return a;
}

// 5. circul: circulant matrix of a random vector, rows are cyclic shifts.
Matrix<double> circul(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.gaussian();
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = v[static_cast<std::size_t>(((j - i) % n + n) % n)];
  return a;
}

// 6. hankel: A(i,j) = c(i+j-1) for i+j-1 <= n else r(i+j-n), c,r random
// with c(n) = r(1) (1-based as in the table).
Matrix<double> hankel(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> c(static_cast<std::size_t>(n)), r(static_cast<std::size_t>(n));
  for (auto& x : c) x = rng.gaussian();
  for (auto& x : r) x = rng.gaussian();
  r[0] = c[static_cast<std::size_t>(n - 1)];
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const int s = i + j;  // 0-based anti-diagonal index, 0 .. 2n-2
      a(i, j) = s < n ? c[static_cast<std::size_t>(s)]
                      : r[static_cast<std::size_t>(s - n + 1)];
    }
  }
  return a;
}

// 7. compan: companion matrix of a random degree-n polynomial.
Matrix<double> compan(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coeff(static_cast<std::size_t>(n + 1));
  for (auto& x : coeff) x = rng.gaussian();
  if (coeff[0] == 0.0) coeff[0] = 1.0;
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) a(0, j) = -coeff[static_cast<std::size_t>(j + 1)] / coeff[0];
  for (int i = 1; i < n; ++i) a(i, i - 1) = 1.0;
  return a;
}

// 8. lehmer: SPD, A(i,j) = min(i,j)/max(i,j); inverse is tridiagonal.
Matrix<double> lehmer(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = static_cast<double>(std::min(i, j) + 1) / (std::max(i, j) + 1);
  return a;
}

// 9. dorr: ill-conditioned, row diagonally dominant tridiagonal matrix from
// a convection-diffusion model problem (gallery('dorr', n, theta)).
Matrix<double> dorr(int n, double theta = 0.01) {
  Matrix<double> a(n, n);
  const double h = 1.0 / (n + 1);
  const int m = (n + 1) / 2;
  const double term = theta / (h * h);
  std::vector<double> sub(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sup(static_cast<std::size_t>(n), 0.0);
  for (int i = 1; i <= n; ++i) {  // 1-based per the published formula
    const double conv = (0.5 - i * h) / h;
    if (i <= m) {
      sub[static_cast<std::size_t>(i - 1)] = -term;
      sup[static_cast<std::size_t>(i - 1)] = -term - conv;
    } else {
      sub[static_cast<std::size_t>(i - 1)] = -term + conv;
      sup[static_cast<std::size_t>(i - 1)] = -term;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (i > 0) a(i, i - 1) = sub[static_cast<std::size_t>(i)];
    if (i + 1 < n) a(i, i + 1) = sup[static_cast<std::size_t>(i)];
    // Row sums cancel except at the boundaries, which keeps the matrix
    // nonsingular and (weakly) diagonally dominant by rows.
    a(i, i) = -(sub[static_cast<std::size_t>(i)] + sup[static_cast<std::size_t>(i)]);
  }
  return a;
}

// 10. demmel: D * (I + 1e-7 * rand(n)), D = diag(10^{14 (i-1)/n}).
Matrix<double> demmel(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double d = std::pow(10.0, 14.0 * i / n);
      a(i, j) = d * ((i == j ? 1.0 : 0.0) + 1e-7 * rng.uniform());
    }
  }
  return a;
}

// 11. chebvand: Chebyshev Vandermonde on n equispaced points of [0, 1]:
// A(i,j) = T_{i-1}(p_j).
Matrix<double> chebvand(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    const double p = n == 1 ? 0.0 : static_cast<double>(j) / (n - 1);
    double tkm1 = 1.0, tk = p;
    for (int i = 0; i < n; ++i) {
      double v = 0.0;
      if (i == 0) {
        v = 1.0;
      } else if (i == 1) {
        v = p;
      } else {
        v = 2.0 * p * tk - tkm1;
        tkm1 = tk;
        tk = v;
      }
      a(i, j) = v;
    }
  }
  return a;
}

// 12. invhess: A(i,j) = x(j) for i >= j, y(i) for j > i with x = 1..n,
// y = -x; its inverse is upper Hessenberg.
Matrix<double> invhess(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = i >= j ? static_cast<double>(j + 1) : -static_cast<double>(i + 1);
  return a;
}

// 13. prolate: symmetric ill-conditioned Toeplitz, a_0 = 2w,
// a_k = sin(2 pi w k)/(pi k), w = 0.25.
Matrix<double> prolate(int n, double w = 0.25) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const int k = std::abs(i - j);
      a(i, j) = k == 0 ? 2.0 * w : std::sin(2.0 * M_PI * w * k) / (M_PI * k);
    }
  }
  return a;
}

// 14. cauchy: A(i,j) = 1/(x_i + y_j) with x = y = 1..n.
Matrix<double> cauchy(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = 1.0 / ((i + 1.0) + (j + 1.0));
  return a;
}

// 15. hilb: Hilbert matrix, A(i,j) = 1/(i + j - 1) (1-based).
Matrix<double> hilb(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = 1.0 / ((i + 1.0) + (j + 1.0) - 1.0);
  return a;
}

// 16. lotkin: the Hilbert matrix with its first row set to all ones.
Matrix<double> lotkin(int n) {
  Matrix<double> a = hilb(n);
  for (int j = 0; j < n; ++j) a(0, j) = 1.0;
  return a;
}

// 17. kahan: upper triangular, A = diag(1, s, .., s^{n-1}) * (I - c*strictly
// upper ones), s = sin(theta), c = cos(theta), theta = 1.2.
Matrix<double> kahan(int n, double theta = 1.2) {
  const double s = std::sin(theta), c = std::cos(theta);
  Matrix<double> a(n, n);
  for (int i = 0; i < n; ++i) {
    const double si = std::pow(s, i);
    a(i, i) = si;
    for (int j = i + 1; j < n; ++j) a(i, j) = -c * si;
  }
  return a;
}

// 18. orthog: symmetric orthogonal eigenvector matrix,
// A(i,j) = sqrt(2/(n+1)) sin(i j pi / (n+1)).
Matrix<double> orthog(int n) {
  Matrix<double> a(n, n);
  const double scale = std::sqrt(2.0 / (n + 1));
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      a(i, j) = scale * std::sin((i + 1.0) * (j + 1.0) * M_PI / (n + 1.0));
  return a;
}

// 19. wilkinson: attains the 2^{n-1} GEPP growth bound: 1 on the diagonal
// and in the last column, -1 below the diagonal.
Matrix<double> wilkinson(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      if (j == n - 1) {
        a(i, j) = 1.0;
      } else if (i == j) {
        a(i, j) = 1.0;
      } else if (i > j) {
        a(i, j) = -1.0;
      }
    }
  }
  return a;
}

// 20. foster: trapezoidal-quadrature Volterra matrix (Foster 1994),
// approximate reconstruction (see DESIGN.md): I - c*h*T with the trapezoid
// weight pattern (half weights in the first column) plus the ones column
// carrying the right-hand-side structure. With c*h = 1 no GEPP row swap
// ever triggers (ties keep the diagonal) and the last column doubles at
// every elimination step — the exponential growth Foster exhibits.
Matrix<double> foster(int n) {
  const double ch = 1.0;
  Matrix<double> a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = 1.0;
    a(i, n - 1) = 1.0;
    if (i > 0 && n > 1) a(i, 0) = -ch / 2.0;       // half trapezoid weight
    for (int j = 1; j < i && j < n - 1; ++j) a(i, j) = -ch;
  }
  return a;
}

// 21. wright: exponential GEPP growth without any row swaps (multiplier
// magnitudes < 1): 1 on the diagonal and last column, -phi below the
// diagonal (approximate reconstruction of Wright 1993; see DESIGN.md).
Matrix<double> wright(int n, double phi = 0.99) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      if (j == n - 1) {
        a(i, j) = 1.0;
      } else if (i == j) {
        a(i, j) = 1.0;
      } else if (i > j) {
        a(i, j) = -phi;
      }
    }
  }
  return a;
}

// fiedler: A(i,j) = |x_i - x_j|, x = 1..n (mentioned in §V-C: LU NoPiv and
// LUPP fail on it via zero pivots).
Matrix<double> fiedler(int n) {
  Matrix<double> a(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = std::abs(static_cast<double>(i - j));
  return a;
}

}  // namespace

Matrix<double> generate(MatrixKind kind, int n, std::uint64_t seed, double param) {
  LUQR_REQUIRE(n > 0, "matrix order must be positive");
  switch (kind) {
    case MatrixKind::Random: return detail::random_gaussian(n, seed);
    case MatrixKind::DiagDominant: return detail::diag_dominant(n, seed);
    case MatrixKind::GrowthExample: return detail::growth_example(n, param);
    case MatrixKind::House: return house(n, seed);
    case MatrixKind::Parter: return parter(n);
    case MatrixKind::Ris: return ris(n);
    case MatrixKind::Condex: return condex(n);
    case MatrixKind::Circul: return circul(n, seed);
    case MatrixKind::Hankel: return hankel(n, seed);
    case MatrixKind::Compan: return compan(n, seed);
    case MatrixKind::Lehmer: return lehmer(n);
    case MatrixKind::Dorr: return dorr(n);
    case MatrixKind::Demmel: return demmel(n, seed);
    case MatrixKind::Chebvand: return chebvand(n);
    case MatrixKind::Invhess: return invhess(n);
    case MatrixKind::Prolate: return prolate(n);
    case MatrixKind::Cauchy: return cauchy(n);
    case MatrixKind::Hilb: return hilb(n);
    case MatrixKind::Lotkin: return lotkin(n);
    case MatrixKind::Kahan: return kahan(n);
    case MatrixKind::Orthog: return orthog(n);
    case MatrixKind::Wilkinson: return wilkinson(n);
    case MatrixKind::Foster: return foster(n);
    case MatrixKind::Wright: return wright(n);
    case MatrixKind::Fiedler: return fiedler(n);
  }
  throw Error("unknown matrix kind");
}

namespace {
const std::vector<std::pair<MatrixKind, const char*>>& kind_table() {
  static const std::vector<std::pair<MatrixKind, const char*>> table = {
      {MatrixKind::Random, "random"},
      {MatrixKind::DiagDominant, "diagdom"},
      {MatrixKind::GrowthExample, "growth_example"},
      {MatrixKind::House, "house"},
      {MatrixKind::Parter, "parter"},
      {MatrixKind::Ris, "ris"},
      {MatrixKind::Condex, "condex"},
      {MatrixKind::Circul, "circul"},
      {MatrixKind::Hankel, "hankel"},
      {MatrixKind::Compan, "compan"},
      {MatrixKind::Lehmer, "lehmer"},
      {MatrixKind::Dorr, "dorr"},
      {MatrixKind::Demmel, "demmel"},
      {MatrixKind::Chebvand, "chebvand"},
      {MatrixKind::Invhess, "invhess"},
      {MatrixKind::Prolate, "prolate"},
      {MatrixKind::Cauchy, "cauchy"},
      {MatrixKind::Hilb, "hilb"},
      {MatrixKind::Lotkin, "lotkin"},
      {MatrixKind::Kahan, "kahan"},
      {MatrixKind::Orthog, "orthog"},
      {MatrixKind::Wilkinson, "wilkinson"},
      {MatrixKind::Foster, "foster"},
      {MatrixKind::Wright, "wright"},
      {MatrixKind::Fiedler, "fiedler"},
  };
  return table;
}
}  // namespace

std::string kind_name(MatrixKind kind) {
  for (const auto& [k, name] : kind_table())
    if (k == kind) return name;
  throw Error("unknown matrix kind");
}

MatrixKind kind_from_name(const std::string& name) {
  for (const auto& [k, n] : kind_table())
    if (name == n) return k;
  throw Error("unknown matrix name: " + name);
}

const std::vector<MatrixKind>& special_set() {
  static const std::vector<MatrixKind> set = {
      MatrixKind::House,    MatrixKind::Parter,   MatrixKind::Ris,
      MatrixKind::Condex,   MatrixKind::Circul,   MatrixKind::Hankel,
      MatrixKind::Compan,   MatrixKind::Lehmer,   MatrixKind::Dorr,
      MatrixKind::Demmel,   MatrixKind::Chebvand, MatrixKind::Invhess,
      MatrixKind::Prolate,  MatrixKind::Cauchy,   MatrixKind::Hilb,
      MatrixKind::Lotkin,   MatrixKind::Kahan,    MatrixKind::Orthog,
      MatrixKind::Wilkinson, MatrixKind::Foster,  MatrixKind::Wright,
  };
  return set;
}

const std::vector<MatrixKind>& all_kinds() {
  static const std::vector<MatrixKind> set = [] {
    std::vector<MatrixKind> v;
    for (const auto& [k, name] : kind_table()) v.push_back(k);
    return v;
  }();
  return set;
}

}  // namespace luqr::gen
