#include <cmath>

#include "common/rng.hpp"
#include "gen/generators.hpp"

namespace luqr::gen {

namespace detail {

Matrix<double> random_gaussian(int n, std::uint64_t seed) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) a(i, j) = rng.gaussian();
  return a;
}

Matrix<double> diag_dominant(int n, std::uint64_t seed) {
  Matrix<double> a = random_gaussian(n, seed);
  // Strong column diagonal dominance: |a_jj| = 4 * sum_{i != j} |a_ij| + 1.
  // The margin matters: the Sum criterion compares against *tile* 1-norms
  // (each tile contributes its worst column), which can exceed any single
  // scalar column sum by up to the tile-row count. The 4x margin keeps
  // ||A_kk^{-1}||_1^{-1} >= sum_i ||A_ik||_1 — block diagonal dominance in
  // the paper's §III-B sense — for every tiling used in tests and benches,
  // so every criterion accepts every step.
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    for (int i = 0; i < n; ++i)
      if (i != j) s += std::abs(a(i, j));
    a(j, j) = 4.0 * s + 1.0;
  }
  return a;
}

// The §III-A matrix that attains the (1+alpha)^{n-1} growth bound:
// alpha^{-1} on the diagonal, -1 below it, 1 in the last column.
Matrix<double> growth_example(int n, double alpha) {
  if (alpha <= 0.0) alpha = 1.0;
  Matrix<double> a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j == n - 1) {
        a(i, j) = 1.0;
      } else if (i == j) {
        a(i, j) = 1.0 / alpha;
      } else if (i > j) {
        a(i, j) = -1.0;
      }
    }
  }
  return a;
}

}  // namespace detail

}  // namespace luqr::gen
