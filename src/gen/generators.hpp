// Matrix generators: random ensembles and the paper's special-matrix set.
//
// Table III of the paper lists 21 matrices (mostly from Higham's Matrix
// Computation Toolbox / MATLAB's gallery) on which LU with partial pivoting
// is exercised or defeated; Figure 3 runs the hybrid algorithm on all of
// them plus 5 random matrices, and the text adds the Fiedler matrix. This
// module reconstructs every generator from its published definition.
//
// Two generators are approximate reconstructions, preserving the defining
// pathology rather than exact entries (documented in DESIGN.md):
//  - foster:  trapezoidal-quadrature Volterra matrix (Foster 1994) with
//             c*h in the unstable regime, so GEPP multipliers feed
//             exponential growth;
//  - wright:  lower-triangular-plus-ones-column matrix with subdiagonal
//             magnitude < 1 (no GEPP row swaps), giving the exponential
//             growth factor Wright (1993) exhibits via multiple shooting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/dense.hpp"

namespace luqr::gen {

enum class MatrixKind {
  // Workhorse ensembles
  Random,        ///< i.i.d. standard Gaussian entries
  DiagDominant,  ///< column diagonally dominant (every criterion passes)
  GrowthExample, ///< the §III-A matrix attaining the (1+alpha)^{n-1} bound
  // Table III specials
  House, Parter, Ris, Condex, Circul, Hankel, Compan, Lehmer, Dorr, Demmel,
  Chebvand, Invhess, Prolate, Cauchy, Hilb, Lotkin, Kahan, Orthog, Wilkinson,
  Foster, Wright,
  // Mentioned in §V-C text
  Fiedler,
};

/// Generate an n x n instance. `seed` feeds the deterministic RNG (only the
/// randomized kinds consume it). `param` tweaks parameterized kinds
/// (GrowthExample's alpha; ignored elsewhere when <= 0).
Matrix<double> generate(MatrixKind kind, int n, std::uint64_t seed = 42,
                        double param = 0.0);

/// Human-readable name ("random", "ris", "wilkinson", ...).
std::string kind_name(MatrixKind kind);

/// Parse a name back to a kind; throws luqr::Error for unknown names.
MatrixKind kind_from_name(const std::string& name);

/// The 21 special matrices of Table III, in the paper's order.
const std::vector<MatrixKind>& special_set();

/// All kinds (for exhaustive tests).
const std::vector<MatrixKind>& all_kinds();

}  // namespace luqr::gen
