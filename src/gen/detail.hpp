// Internal: generator implementations shared between generators.cpp
// (ensembles) and special.cpp (Table III set + registry).
#pragma once

#include <cstdint>

#include "kernels/dense.hpp"

namespace luqr::gen::detail {

Matrix<double> random_gaussian(int n, std::uint64_t seed);
Matrix<double> diag_dominant(int n, std::uint64_t seed);
Matrix<double> growth_example(int n, double alpha);

}  // namespace luqr::gen::detail
