// luqr_serve — stress driver for the serve::SolveService subsystem.
//
//   luqr_serve [options]
//
//   --clients N       client threads (default 8)
//   --requests M      requests per client (default 25; total = N*M)
//   --sizes a,b,c     matrix-order pool (default 32,48,64,96)
//   --pool K          distinct matrices in the pool (default 8; reuse
//                     across requests is what exercises the cache)
//   --nb V            tile size (default 32)
//   --threads T       engine workers (default: hardware)
//   --dispatchers D   queue dispatchers (default 1)
//   --queue Q         admission-queue capacity (default 256)
//   --cache-mb MB     factorization-cache budget (default 256)
//   --reject          reject-when-full admission instead of blocking
//   --batch K         fold every K-th request into a K-member fused batch
//                     (default 0 = no batching)
//   --many K          fold every K-th request into a K-member submit_many
//                     call with mixed pool picks (default 0 = off); this
//                     exercises the size-bucketed staging area
//   --small-mix       small-problem preset: sizes 16..128, submit_many
//                     groups of 8, verification on — the batched-staging
//                     stress shape CI runs under TSan
//   --verify          check every result bitwise against a one-shot
//                     luqr::Solver reference (results are collected during
//                     the run and verified after it, outside the timed
//                     region, so the throughput numbers measure the service)
//   --stress          acceptance preset: >= 8 clients x >= 25 requests,
//                     --verify on, nonzero exit on any mismatch/failure
//   --seed S          matrix/rhs seed base (default 1)
//   --metrics-json F  write periodic JSON metrics snapshots to F (atomic
//                     tmp+rename; luqr_top watches this file)
//   --metrics-prom F  write periodic Prometheus text snapshots to F
//   --metrics-period MS  snapshot period in ms (default 500)
//
// Prints the full service telemetry snapshot at the end (queue depth,
// cache hit rate, latency percentiles, jobs/s, workspace bytes); exits
// nonzero if any job failed, any verification mismatched, or (stress mode)
// the run shape fell short of the acceptance floor.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "luqr.hpp"
#include "obs/export.hpp"
#include "serve/service.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--requests M] [--sizes a,b,c] [--pool K]\n"
               "       [--nb V] [--threads T] [--dispatchers D] [--queue Q]\n"
               "       [--cache-mb MB] [--reject] [--batch K] [--many K]\n"
               "       [--small-mix] [--verify] [--stress] [--seed S]\n"
               "       [--metrics-json F] [--metrics-prom F] "
               "[--metrics-period MS]\n",
               argv0);
  std::exit(2);
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace luqr;

  int clients = 8, requests = 25, pool_size = 8, nb = 32, threads = 0;
  int dispatchers = 1, batch_every = 0, many_every = 0;
  std::size_t queue_capacity = 256, cache_mb = 256;
  bool reject = false, verify_results = false, stress = false, small_mix = false;
  std::uint64_t seed = 1;
  std::vector<int> sizes = {32, 48, 64, 96};
  std::string metrics_json, metrics_prom;
  int metrics_period_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--clients") clients = std::atoi(need_value());
    else if (arg == "--requests") requests = std::atoi(need_value());
    else if (arg == "--sizes") sizes = parse_sizes(need_value());
    else if (arg == "--pool") pool_size = std::atoi(need_value());
    else if (arg == "--nb") nb = std::atoi(need_value());
    else if (arg == "--threads") threads = std::atoi(need_value());
    else if (arg == "--dispatchers") dispatchers = std::atoi(need_value());
    else if (arg == "--queue") queue_capacity = static_cast<std::size_t>(std::atol(need_value()));
    else if (arg == "--cache-mb") cache_mb = static_cast<std::size_t>(std::atol(need_value()));
    else if (arg == "--reject") reject = true;
    else if (arg == "--batch") batch_every = std::atoi(need_value());
    else if (arg == "--many") many_every = std::atoi(need_value());
    else if (arg == "--small-mix") small_mix = true;
    else if (arg == "--verify") verify_results = true;
    else if (arg == "--stress") stress = true;
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(need_value()));
    else if (arg == "--metrics-json") metrics_json = need_value();
    else if (arg == "--metrics-prom") metrics_prom = need_value();
    else if (arg == "--metrics-period") metrics_period_ms = std::atoi(need_value());
    else usage(argv[0]);
  }
  if (small_mix) {
    sizes = {16, 32, 48, 64, 96, 128};
    if (many_every <= 0) many_every = 8;
    pool_size = std::max(pool_size, 2 * static_cast<int>(sizes.size()));
    verify_results = true;
  }
  if (stress) {
    clients = std::max(clients, 8);
    requests = std::max(requests, 25);
    verify_results = true;
  }
  if (clients < 1 || requests < 1 || pool_size < 1 || sizes.empty()) usage(argv[0]);

  try {
    serve::ServiceConfig cfg;
    cfg.solver =
        SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb).grid(2, 2);
    cfg.threads = threads;
    cfg.dispatchers = dispatchers;
    cfg.queue_capacity = queue_capacity;
    cfg.cache_bytes = cache_mb << 20;
    cfg.reject_when_full = reject;

    // Matrix pool (mixed sizes) and, when verifying, bitwise references.
    std::vector<Matrix<double>> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int i = 0; i < pool_size; ++i) {
      const int n = sizes[static_cast<std::size_t>(i) % sizes.size()];
      pool.push_back(gen::generate(gen::MatrixKind::Random, n,
                                   seed + static_cast<std::uint64_t>(i)));
    }
    const Solver reference(cfg.solver);

    const int total = clients * requests;
    std::printf("luqr_serve: %d clients x %d requests = %d jobs | pool=%d "
                "sizes=%zu nb=%d | queue=%zu (%s) cache=%zuMB | %s%s\n",
                clients, requests, total, pool_size, sizes.size(), nb,
                queue_capacity, reject ? "reject" : "block", cache_mb,
                verify_results ? "verify" : "no-verify", stress ? " [stress]" : "");

    std::atomic<long> mismatches{0}, failures{0}, rejected{0}, done{0};
    // Per-client record of what came back, verified after the timed run.
    struct Outcome {
      int pick = 0;
      Matrix<double> b, x;
    };
    std::vector<std::vector<Outcome>> outcomes(static_cast<std::size_t>(clients));

    // Live exporters: snapshot the global registry (kernel profiler, engine
    // sampler gauges, serve counters/histograms) on a period while the run
    // is hot; stop() flushes a final post-drain snapshot.
    std::unique_ptr<obs::SnapshotWriter> metrics_writer;
    if (!metrics_json.empty() || !metrics_prom.empty()) {
      obs::SnapshotWriter::Options wopt;
      wopt.json_path = metrics_json;
      wopt.prom_path = metrics_prom;
      wopt.period_ms = metrics_period_ms;
      metrics_writer = std::make_unique<obs::SnapshotWriter>(wopt);
    }

    Timer wall;
    {
      serve::SolveService svc(cfg);
      auto client = [&](int id) {
        Rng rng(seed * 977 + static_cast<std::uint64_t>(id));
        for (int r = 0; r < requests; ++r) {
          const int pick = static_cast<int>(rng.uniform() * pool_size) % pool_size;
          const Matrix<double>& a = pool[static_cast<std::size_t>(pick)];
          const auto prio = static_cast<serve::Priority>(r % 3);
          const std::uint64_t rhs_seed =
              seed + 7919u * static_cast<std::uint64_t>(id) + static_cast<std::uint64_t>(r);
          try {
            std::vector<serve::JobHandle> handles;
            std::vector<Matrix<double>> bs;
            std::vector<int> picks;  // pool index per handle, for verification
            if (many_every > 0 && r % many_every == 0) {
              // K independent systems with mixed pool picks in one
              // submit_many call: lands in the size-bucketed staging area.
              std::vector<Matrix<double>> as;
              for (int k = 0; k < many_every; ++k) {
                const int p = static_cast<int>(rng.uniform() * pool_size) % pool_size;
                const Matrix<double>& ak = pool[static_cast<std::size_t>(p)];
                Matrix<double> b(ak.rows(), 1);
                Rng brng(rhs_seed + static_cast<std::uint64_t>(k) * 131);
                for (int i = 0; i < ak.rows(); ++i) b(i, 0) = brng.gaussian();
                picks.push_back(p);
                as.push_back(ak);
                bs.push_back(std::move(b));
              }
              handles = svc.submit_many(as, bs, prio);
            } else if (batch_every > 0 && r % batch_every == 0) {
              for (int k = 0; k < batch_every; ++k) {
                Matrix<double> b(a.rows(), 1);
                Rng brng(rhs_seed + static_cast<std::uint64_t>(k) * 131);
                for (int i = 0; i < a.rows(); ++i) b(i, 0) = brng.gaussian();
                picks.push_back(pick);
                bs.push_back(std::move(b));
              }
              handles = svc.submit_batch(a, bs, prio);
            } else {
              Matrix<double> b(a.rows(), 1 + r % 2);
              Rng brng(rhs_seed);
              for (int j = 0; j < b.cols(); ++j)
                for (int i = 0; i < a.rows(); ++i) b(i, j) = brng.gaussian();
              picks.push_back(pick);
              bs.push_back(b);
              handles.push_back(svc.submit_solve(a, std::move(b), prio));
            }
            for (std::size_t h = 0; h < handles.size(); ++h) {
              handles[h].wait();
              if (handles[h].status() == serve::JobStatus::Rejected) {
                rejected.fetch_add(1);
                continue;
              }
              Matrix<double> x = handles[h].get().x;
              done.fetch_add(1);
              if (verify_results)
                outcomes[static_cast<std::size_t>(id)].push_back(
                    Outcome{picks[h], std::move(bs[h]), std::move(x)});
            }
          } catch (const std::exception& e) {
            // get() rethrows the job's original exception of any type.
            failures.fetch_add(1);
            std::fprintf(stderr, "client %d request %d: %s\n", id, r, e.what());
          } catch (...) {
            failures.fetch_add(1);
            std::fprintf(stderr, "client %d request %d: unknown error\n", id, r);
          }
        }
      };
      std::vector<std::thread> pool_threads;
      pool_threads.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) pool_threads.emplace_back(client, c);
      for (auto& t : pool_threads) t.join();
      svc.drain();
      const double secs = wall.seconds();

      // Verification runs after the timed region: the reference solves are
      // O(n^3) each and must not pollute the service throughput numbers.
      if (verify_results) {
        for (const auto& per_client : outcomes) {
          for (const Outcome& o : per_client) {
            const Matrix<double>& a = pool[static_cast<std::size_t>(o.pick)];
            const Matrix<double> want = reference.solve(a, o.b).x;
            bool ok = o.x.rows() == want.rows() && o.x.cols() == want.cols();
            for (int j = 0; ok && j < want.cols(); ++j)
              for (int i = 0; i < want.rows(); ++i)
                if (o.x(i, j) != want(i, j)) {
                  ok = false;
                  break;
                }
            if (!ok) mismatches.fetch_add(1);
          }
        }
      }

      const serve::ServiceStats s = svc.stats();
      std::printf("\n-- results ------------------------------------------\n");
      std::printf("wall time          %.3fs   (%.1f jobs/s end-to-end)\n", secs,
                  static_cast<double>(done.load()) / secs);
      std::printf("completed          %llu (ok %ld, rejected %ld, failed %llu)\n",
                  static_cast<unsigned long long>(s.completed), done.load(),
                  rejected.load(), static_cast<unsigned long long>(s.failed));
      std::printf("verify             %s (%ld mismatches)\n",
                  verify_results ? (mismatches.load() ? "FAILED" : "bitwise ok")
                                 : "off",
                  mismatches.load());
      std::printf("\n-- service telemetry --------------------------------\n");
      std::printf("queue              depth=%zu capacity=%zu inflight=%zu\n",
                  s.queue_depth, s.queue_capacity, s.inflight);
      std::printf("cache              hits=%llu misses=%llu (%.1f%% hit rate), "
                  "%zu entries, %.1f/%.0f MB, %llu evictions\n",
                  static_cast<unsigned long long>(s.cache.hits),
                  static_cast<unsigned long long>(s.cache.misses),
                  100.0 * s.cache.hit_rate(), s.cache.entries,
                  static_cast<double>(s.cache.bytes) / (1 << 20),
                  static_cast<double>(s.cache.byte_budget) / (1 << 20),
                  static_cast<unsigned long long>(s.cache.evictions));
      std::printf("factorizations     %llu coarse, %llu fine-grained, "
                  "%zu pending\n",
                  static_cast<unsigned long long>(s.factors_coarse),
                  static_cast<unsigned long long>(s.factors_inline_parallel),
                  s.pending_factorizations);
      std::printf("batching           %llu batches / %llu members / %llu fused "
                  "rhs columns\n",
                  static_cast<unsigned long long>(s.batches),
                  static_cast<unsigned long long>(s.batch_members),
                  static_cast<unsigned long long>(s.fused_rhs_columns));
      std::printf("staged batching    %llu jobs / %llu chunks (fill mean %.1f), "
                  "%llu cache hits skimmed\n",
                  static_cast<unsigned long long>(s.batched_jobs),
                  static_cast<unsigned long long>(s.batches_executed),
                  s.batch_fill_mean,
                  static_cast<unsigned long long>(s.batch_hits_skimmed));
      std::printf("latency (us)       p50=%llu p99=%llu max=%llu mean=%.0f\n",
                  static_cast<unsigned long long>(s.latency_p50_us),
                  static_cast<unsigned long long>(s.latency_p99_us),
                  static_cast<unsigned long long>(s.latency_max_us),
                  s.latency_mean_us);
      std::printf("exec (us)          p50=%llu p99=%llu\n",
                  static_cast<unsigned long long>(s.exec_p50_us),
                  static_cast<unsigned long long>(s.exec_p99_us));
      std::printf("throughput         %.1f jobs/s over %.3fs uptime\n",
                  s.jobs_per_second, s.uptime_seconds);
      std::printf("engine             %d workers, %llu tasks, %llu steals, "
                  "%.1f KB workspace\n",
                  s.workers,
                  static_cast<unsigned long long>(s.engine_tasks_executed),
                  static_cast<unsigned long long>(s.engine_steals),
                  static_cast<double>(s.workspace_bytes) / 1024.0);

      if (s.failed != 0 || failures.load() != 0) return 1;
      if (mismatches.load() != 0) return 1;
      if (stress && done.load() < 200) {
        std::fprintf(stderr, "stress: fewer than 200 verified jobs completed\n");
        return 1;
      }
    }
    if (metrics_writer) {
      metrics_writer->stop();  // flushes a final post-drain snapshot
      std::printf("metrics            %llu snapshots -> %s%s%s\n",
                  static_cast<unsigned long long>(
                      metrics_writer->snapshots_written()),
                  metrics_json.c_str(),
                  (!metrics_json.empty() && !metrics_prom.empty()) ? ", " : "",
                  metrics_prom.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
