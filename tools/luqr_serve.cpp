// luqr_serve — stress driver for the serve::SolveService subsystem.
//
//   luqr_serve [options]
//
//   --clients N       client threads (default 8)
//   --requests M      requests per client (default 25; total = N*M)
//   --sizes a,b,c     matrix-order pool (default 32,48,64,96)
//   --pool K          distinct matrices in the pool (default 8; reuse
//                     across requests is what exercises the cache)
//   --nb V            tile size (default 32)
//   --threads T       engine workers (default: hardware)
//   --dispatchers D   queue dispatchers (default 1)
//   --queue Q         admission-queue capacity (default 256)
//   --cache-mb MB     factorization-cache budget (default 256)
//   --reject          reject-when-full admission instead of blocking
//   --batch K         fold every K-th request into a K-member fused batch
//                     (default 0 = no batching)
//   --many K          fold every K-th request into a K-member submit_many
//                     call with mixed pool picks (default 0 = off); this
//                     exercises the size-bucketed staging area
//   --small-mix       small-problem preset: sizes 16..128, submit_many
//                     groups of 8, verification on — the batched-staging
//                     stress shape CI runs under TSan
//   --verify          check every result bitwise against a one-shot
//                     luqr::Solver reference (results are collected during
//                     the run and verified after it, outside the timed
//                     region, so the throughput numbers measure the service)
//   --stress          acceptance preset: >= 8 clients x >= 25 requests,
//                     --verify on, nonzero exit on any mismatch/failure
//   --seed S          matrix/rhs seed base (default 1)
//   --metrics-json F  write periodic JSON metrics snapshots to F (atomic
//                     tmp+rename; luqr_top watches this file)
//   --metrics-prom F  write periodic Prometheus text snapshots to F
//   --metrics-period MS  snapshot period in ms (default 500)
//
// Resilience harnesses (self-contained modes; other load flags ignored):
//   --fault-sweep     run a seeded chaos sweep: every fault site family
//                     armed (alloc failures, NaN/singular kernel faults,
//                     task delays/stalls, serve throws/drops/delays), a
//                     mixed workload with deadlines + cancellations per
//                     seed, then assert the accounting balance
//                     (submitted == completed+failed+cancelled+rejected+
//                     shed) and that a fresh solve on the SAME service is
//                     bitwise-identical to a one-shot Solver after the
//                     plan is uninstalled (no residual poisoning)
//   --sweep-seeds N   seeds per sweep (default 16)
//   --fault-seed S    first sweep seed (default 1)
//   --slo-demo        overload demo: flood of tight-deadline Batch jobs +
//                     closed-loop trickle of loose-deadline Interactive
//                     jobs; assert Interactive p99 stays under its
//                     deadline while Batch sheds absorb the overload
//
// Prints the full service telemetry snapshot at the end (queue depth,
// cache hit rate, latency percentiles, jobs/s, workspace bytes); exits
// nonzero if any job failed, any verification mismatched, or (stress mode)
// the run shape fell short of the acceptance floor.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "luqr.hpp"
#include "obs/export.hpp"
#include "serve/service.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--requests M] [--sizes a,b,c] [--pool K]\n"
               "       [--nb V] [--threads T] [--dispatchers D] [--queue Q]\n"
               "       [--cache-mb MB] [--reject] [--batch K] [--many K]\n"
               "       [--small-mix] [--verify] [--stress] [--seed S]\n"
               "       [--metrics-json F] [--metrics-prom F] "
               "[--metrics-period MS]\n"
               "       [--fault-sweep] [--sweep-seeds N] [--fault-seed S] "
               "[--slo-demo]\n",
               argv0);
  std::exit(2);
}

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool bitwise_equal(const luqr::Matrix<double>& a, const luqr::Matrix<double>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      if (a(i, j) != b(i, j)) return false;
  return true;
}

// Seeded chaos sweep: every instrumented fault family armed at once against
// a mixed workload. The point is not that any particular fault fires but
// that whatever does fire, the service neither crashes, hangs, loses a job
// from its books, nor keeps a poisoned factorization around afterwards.
int run_fault_sweep(std::uint64_t first_seed, int nseeds, int nb) {
  using namespace luqr;
  serve::ServiceConfig cfg;
  cfg.solver =
      SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb).grid(2, 2);
  cfg.threads = 2;
  cfg.dispatchers = 2;
  cfg.queue_capacity = 128;
  cfg.cache_bytes = 32u << 20;
  cfg.max_retries = 2;
  cfg.retry_backoff_us = 200;
  cfg.watchdog_period_ms = 2;
  cfg.watchdog_wall_multiple = 4;
  // Every job gets a hard wall, so dropped jobs are always guarded: the
  // watchdog force-fails them instead of letting a client hang.
  cfg.hard_wall_us = 400000;
  const Solver reference(cfg.solver);

  const int sizes[4] = {24, 32, 48, 64};
  constexpr int kClients = 3, kRequests = 14, kPool = 6;
  int bad_seeds = 0;

  for (int s = 0; s < nseeds; ++s) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(s);
    fault::FaultPlan plan(seed);
    plan.arm({fault::site::kWorkspaceAlloc, 0.02});
    plan.arm({fault::site::kTileAlloc, 0.02});
    plan.arm({fault::site::kGemmNan, 0.01, 3});
    plan.arm({fault::site::kGetrfSingular, 0.01, 2});
    plan.arm({fault::site::kTaskDelay, 0.05, ~std::uint64_t{0}, 0, 200});
    plan.arm({fault::site::kTaskStall, 0.01, 4, 0, 5000});
    plan.arm({fault::site::kServeTask, 0.05});
    plan.arm({fault::site::kServeDrop, 0.02, 4});
    plan.arm({fault::site::kServeDelay, 0.05, ~std::uint64_t{0}, 0, 200});

    std::vector<Matrix<double>> pool;
    for (int i = 0; i < kPool; ++i)
      pool.push_back(gen::generate(gen::MatrixKind::Random, sizes[i % 4],
                                   seed * 100 + static_cast<std::uint64_t>(i)));

    serve::SolveService svc(cfg);
    std::mutex hmu;
    std::vector<serve::JobHandle> handles;
    {
      fault::ScopedPlan guard(plan);
      auto client = [&](int id) {
        Rng rng(seed * 7919 + static_cast<std::uint64_t>(id));
        for (int r = 0; r < kRequests; ++r) {
          std::vector<serve::JobHandle> mine;
          try {
            if (r % 5 == 4) {
              // A submit_many group: staging buckets + chunk tasks under
              // fault fire (members are non-retryable; they must still
              // settle one way or the other).
              std::vector<Matrix<double>> as, bs;
              for (int k = 0; k < 4; ++k) {
                const Matrix<double>& a = pool[static_cast<std::size_t>(
                    static_cast<int>(rng.uniform() * kPool) % kPool)];
                Matrix<double> b(a.rows(), 1);
                for (int i = 0; i < a.rows(); ++i) b(i, 0) = rng.gaussian();
                as.push_back(a);
                bs.push_back(std::move(b));
              }
              mine = svc.submit_many(as, bs, serve::Priority::Batch);
            } else {
              const Matrix<double>& a = pool[static_cast<std::size_t>(
                  (id * kRequests + r) % kPool)];
              Matrix<double> b(a.rows(), 1 + r % 2);
              for (int j = 0; j < b.cols(); ++j)
                for (int i = 0; i < a.rows(); ++i) b(i, j) = rng.gaussian();
              serve::SubmitOptions opt;
              opt.priority = static_cast<serve::Priority>(r % 3);
              if (r % 7 == 3) opt.deadline_us = 1;  // born expired: must shed
              else if (r % 7 == 5) opt.deadline_us = 100000;
              mine.push_back(svc.submit_solve(a, std::move(b), opt));
            }
            if (r % 6 == 2 && !mine.empty()) mine.front().cancel();
            for (auto& h : mine) h.wait_for(50000);  // bounded; drain settles
          } catch (const std::exception& e) {
            std::fprintf(stderr, "sweep seed %llu client %d: submit: %s\n",
                         static_cast<unsigned long long>(seed), id, e.what());
          }
          std::lock_guard<std::mutex> lock(hmu);
          for (auto& h : mine) handles.push_back(std::move(h));
        }
      };
      std::vector<std::thread> ts;
      for (int c = 0; c < kClients; ++c) ts.emplace_back(client, c);
      for (auto& t : ts) t.join();
      svc.drain();
    }  // plan uninstalled; service still alive

    bool ok = true;
    for (const auto& h : handles) {
      const serve::JobStatus st = h.status();
      if (st == serve::JobStatus::Queued || st == serve::JobStatus::Running) {
        std::fprintf(stderr, "seed %llu: non-terminal job after drain\n",
                     static_cast<unsigned long long>(seed));
        ok = false;
      }
    }
    const serve::ServiceStats st = svc.stats();
    const std::uint64_t settled =
        st.completed + st.failed + st.cancelled + st.rejected + st.shed;
    if (st.submitted != settled) {
      std::fprintf(stderr,
                   "seed %llu: accounting IMBALANCE submitted=%llu settled=%llu "
                   "(done=%llu fail=%llu cancel=%llu reject=%llu shed=%llu)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(st.submitted),
                   static_cast<unsigned long long>(settled),
                   static_cast<unsigned long long>(st.completed),
                   static_cast<unsigned long long>(st.failed),
                   static_cast<unsigned long long>(st.cancelled),
                   static_cast<unsigned long long>(st.rejected),
                   static_cast<unsigned long long>(st.shed));
      ok = false;
    }

    // Post-sweep correctness on the SAME service: a fresh system must come
    // back bitwise-identical to the one-shot reference — no poisoned cache
    // entry, stuck degraded admission, or leaked fault state.
    try {
      Matrix<double> a =
          gen::generate(gen::MatrixKind::Random, 48, seed * 1000 + 999);
      Matrix<double> b(48, 2);
      Rng brng(seed * 1000 + 998);
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 48; ++i) b(i, j) = brng.gaussian();
      Matrix<double> got = svc.submit_solve(a, b, serve::SubmitOptions{}).get().x;
      if (!bitwise_equal(got, reference.solve(a, b).x)) {
        std::fprintf(stderr, "seed %llu: post-sweep solve NOT bitwise-equal\n",
                     static_cast<unsigned long long>(seed));
        ok = false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "seed %llu: post-sweep solve failed: %s\n",
                   static_cast<unsigned long long>(seed), e.what());
      ok = false;
    }

    std::printf("seed %-4llu %s  fires=%llu (alloc=%llu nan=%llu sing=%llu "
                "throw=%llu drop=%llu)  done=%llu fail=%llu cancel=%llu "
                "shed=%llu retries=%llu trips=%llu pressure=%llu health=%d\n",
                static_cast<unsigned long long>(seed), ok ? "ok  " : "FAIL",
                static_cast<unsigned long long>(plan.total_fires()),
                static_cast<unsigned long long>(
                    plan.fires(fault::site::kWorkspaceAlloc) +
                    plan.fires(fault::site::kTileAlloc)),
                static_cast<unsigned long long>(plan.fires(fault::site::kGemmNan)),
                static_cast<unsigned long long>(
                    plan.fires(fault::site::kGetrfSingular)),
                static_cast<unsigned long long>(plan.fires(fault::site::kServeTask)),
                static_cast<unsigned long long>(plan.fires(fault::site::kServeDrop)),
                static_cast<unsigned long long>(st.completed),
                static_cast<unsigned long long>(st.failed),
                static_cast<unsigned long long>(st.cancelled),
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.watchdog_trips),
                static_cast<unsigned long long>(st.memory_pressure),
                static_cast<int>(st.health));
    if (!ok) ++bad_seeds;
  }
  std::printf("fault-sweep: %d/%d seeds clean\n", nseeds - bad_seeds, nseeds);
  return bad_seeds == 0 ? 0 : 1;
}

// Overload demo: Batch flood with deadlines it cannot possibly meet plus a
// closed-loop Interactive trickle with a loose deadline. Healthy behavior is
// load shedding doing its job: Batch sheds absorb the overload while the
// Interactive p99 stays inside its SLO.
int run_slo_demo(int nb, const std::string& prom_path) {
  using namespace luqr;
  serve::ServiceConfig cfg;
  cfg.solver =
      SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb).grid(2, 2);
  cfg.threads = 2;
  cfg.dispatchers = 2;
  cfg.queue_capacity = 512;
  cfg.max_inflight = 2;  // scarce admission: the overload has to queue
  const std::uint64_t kBatchDeadlineUs = 5000;
  const std::uint64_t kInterDeadlineUs = 1000000;
  constexpr int kBatchJobs = 150, kInterJobs = 40;

  std::unique_ptr<obs::SnapshotWriter> writer;
  if (!prom_path.empty()) {
    obs::SnapshotWriter::Options wopt;
    wopt.prom_path = prom_path;
    wopt.period_ms = 200;
    writer = std::make_unique<obs::SnapshotWriter>(wopt);
  }

  std::vector<std::uint64_t> inter_lat_us;
  std::uint64_t sheds = 0;
  int inter_failed = 0;
  {
    serve::SolveService svc(cfg);

    std::thread flood([&] {
      // Distinct matrices (the cache cannot absorb the flood for free),
      // generated BEFORE submission so the burst hits the queue at once —
      // queue wait, not generation, is what blows the tight deadline.
      Rng rng(7);
      std::vector<Matrix<double>> as, bs;
      for (int i = 0; i < kBatchJobs; ++i) {
        as.push_back(gen::generate(gen::MatrixKind::Random, 96,
                                   1000 + static_cast<std::uint64_t>(i)));
        Matrix<double> b(96, 1);
        for (int r = 0; r < 96; ++r) b(r, 0) = rng.gaussian();
        bs.push_back(std::move(b));
      }
      for (int i = 0; i < kBatchJobs; ++i) {
        serve::SubmitOptions opt;
        opt.priority = serve::Priority::Batch;
        opt.deadline_us = kBatchDeadlineUs;
        svc.submit_solve(std::move(as[static_cast<std::size_t>(i)]),
                         std::move(bs[static_cast<std::size_t>(i)]), opt);
      }
    });

    std::thread trickle([&] {
      // Closed loop: one request at a time, latency measured submit->done.
      const Matrix<double> a = gen::generate(gen::MatrixKind::Random, 32, 42);
      Rng rng(8);
      for (int i = 0; i < kInterJobs; ++i) {
        Matrix<double> b(32, 1);
        for (int r = 0; r < 32; ++r) b(r, 0) = rng.gaussian();
        serve::SubmitOptions opt;
        opt.priority = serve::Priority::Interactive;
        opt.deadline_us = kInterDeadlineUs;
        const auto t0 = std::chrono::steady_clock::now();
        serve::JobHandle h = svc.submit_solve(a, std::move(b), opt);
        h.wait();
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        inter_lat_us.push_back(static_cast<std::uint64_t>(us));
        if (h.status() != serve::JobStatus::Done) ++inter_failed;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    flood.join();
    trickle.join();
    svc.drain();
    sheds = svc.stats().shed;
  }
  if (writer) writer->stop();

  std::sort(inter_lat_us.begin(), inter_lat_us.end());
  const std::uint64_t p99 =
      inter_lat_us[inter_lat_us.size() * 99 / 100 >= inter_lat_us.size()
                       ? inter_lat_us.size() - 1
                       : inter_lat_us.size() * 99 / 100];
  const std::uint64_t p50 = inter_lat_us[inter_lat_us.size() / 2];
  std::printf("slo-demo: batch=%d (deadline %llums) interactive=%d "
              "(deadline %llums)\n",
              kBatchJobs, static_cast<unsigned long long>(kBatchDeadlineUs / 1000),
              kInterJobs, static_cast<unsigned long long>(kInterDeadlineUs / 1000));
  std::printf("interactive latency  p50=%lluus p99=%lluus (SLO %lluus)\n",
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(kInterDeadlineUs));
  std::printf("batch sheds          %llu\n",
              static_cast<unsigned long long>(sheds));

  bool ok = true;
  if (inter_failed != 0) {
    std::fprintf(stderr, "slo-demo: %d interactive jobs not Done\n", inter_failed);
    ok = false;
  }
  if (p99 >= kInterDeadlineUs) {
    std::fprintf(stderr, "slo-demo: interactive p99 %lluus breaches SLO\n",
                 static_cast<unsigned long long>(p99));
    ok = false;
  }
  if (sheds == 0) {
    std::fprintf(stderr, "slo-demo: no sheds — overload was not shed\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace luqr;

  int clients = 8, requests = 25, pool_size = 8, nb = 32, threads = 0;
  int dispatchers = 1, batch_every = 0, many_every = 0;
  std::size_t queue_capacity = 256, cache_mb = 256;
  bool reject = false, verify_results = false, stress = false, small_mix = false;
  bool fault_sweep = false, slo_demo = false;
  int sweep_seeds = 16;
  std::uint64_t fault_seed = 1;
  std::uint64_t seed = 1;
  std::vector<int> sizes = {32, 48, 64, 96};
  std::string metrics_json, metrics_prom;
  int metrics_period_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--clients") clients = std::atoi(need_value());
    else if (arg == "--requests") requests = std::atoi(need_value());
    else if (arg == "--sizes") sizes = parse_sizes(need_value());
    else if (arg == "--pool") pool_size = std::atoi(need_value());
    else if (arg == "--nb") nb = std::atoi(need_value());
    else if (arg == "--threads") threads = std::atoi(need_value());
    else if (arg == "--dispatchers") dispatchers = std::atoi(need_value());
    else if (arg == "--queue") queue_capacity = static_cast<std::size_t>(std::atol(need_value()));
    else if (arg == "--cache-mb") cache_mb = static_cast<std::size_t>(std::atol(need_value()));
    else if (arg == "--reject") reject = true;
    else if (arg == "--batch") batch_every = std::atoi(need_value());
    else if (arg == "--many") many_every = std::atoi(need_value());
    else if (arg == "--small-mix") small_mix = true;
    else if (arg == "--verify") verify_results = true;
    else if (arg == "--stress") stress = true;
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(need_value()));
    else if (arg == "--metrics-json") metrics_json = need_value();
    else if (arg == "--metrics-prom") metrics_prom = need_value();
    else if (arg == "--metrics-period") metrics_period_ms = std::atoi(need_value());
    else if (arg == "--fault-sweep") fault_sweep = true;
    else if (arg == "--sweep-seeds") sweep_seeds = std::atoi(need_value());
    else if (arg == "--fault-seed") fault_seed = static_cast<std::uint64_t>(std::atoll(need_value()));
    else if (arg == "--slo-demo") slo_demo = true;
    else usage(argv[0]);
  }
  if (fault_sweep || slo_demo) {
    if (sweep_seeds < 1) usage(argv[0]);
    try {
      return fault_sweep ? run_fault_sweep(fault_seed, sweep_seeds, 16)
                         : run_slo_demo(16, metrics_prom);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (small_mix) {
    sizes = {16, 32, 48, 64, 96, 128};
    if (many_every <= 0) many_every = 8;
    pool_size = std::max(pool_size, 2 * static_cast<int>(sizes.size()));
    verify_results = true;
  }
  if (stress) {
    clients = std::max(clients, 8);
    requests = std::max(requests, 25);
    verify_results = true;
  }
  if (clients < 1 || requests < 1 || pool_size < 1 || sizes.empty()) usage(argv[0]);

  try {
    serve::ServiceConfig cfg;
    cfg.solver =
        SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb).grid(2, 2);
    cfg.threads = threads;
    cfg.dispatchers = dispatchers;
    cfg.queue_capacity = queue_capacity;
    cfg.cache_bytes = cache_mb << 20;
    cfg.reject_when_full = reject;

    // Matrix pool (mixed sizes) and, when verifying, bitwise references.
    std::vector<Matrix<double>> pool;
    pool.reserve(static_cast<std::size_t>(pool_size));
    for (int i = 0; i < pool_size; ++i) {
      const int n = sizes[static_cast<std::size_t>(i) % sizes.size()];
      pool.push_back(gen::generate(gen::MatrixKind::Random, n,
                                   seed + static_cast<std::uint64_t>(i)));
    }
    const Solver reference(cfg.solver);

    const int total = clients * requests;
    std::printf("luqr_serve: %d clients x %d requests = %d jobs | pool=%d "
                "sizes=%zu nb=%d | queue=%zu (%s) cache=%zuMB | %s%s\n",
                clients, requests, total, pool_size, sizes.size(), nb,
                queue_capacity, reject ? "reject" : "block", cache_mb,
                verify_results ? "verify" : "no-verify", stress ? " [stress]" : "");

    std::atomic<long> mismatches{0}, failures{0}, rejected{0}, done{0};
    // Per-client record of what came back, verified after the timed run.
    struct Outcome {
      int pick = 0;
      Matrix<double> b, x;
    };
    std::vector<std::vector<Outcome>> outcomes(static_cast<std::size_t>(clients));

    // Live exporters: snapshot the global registry (kernel profiler, engine
    // sampler gauges, serve counters/histograms) on a period while the run
    // is hot; stop() flushes a final post-drain snapshot.
    std::unique_ptr<obs::SnapshotWriter> metrics_writer;
    if (!metrics_json.empty() || !metrics_prom.empty()) {
      obs::SnapshotWriter::Options wopt;
      wopt.json_path = metrics_json;
      wopt.prom_path = metrics_prom;
      wopt.period_ms = metrics_period_ms;
      metrics_writer = std::make_unique<obs::SnapshotWriter>(wopt);
    }

    Timer wall;
    {
      serve::SolveService svc(cfg);
      auto client = [&](int id) {
        Rng rng(seed * 977 + static_cast<std::uint64_t>(id));
        for (int r = 0; r < requests; ++r) {
          const int pick = static_cast<int>(rng.uniform() * pool_size) % pool_size;
          const Matrix<double>& a = pool[static_cast<std::size_t>(pick)];
          const auto prio = static_cast<serve::Priority>(r % 3);
          const std::uint64_t rhs_seed =
              seed + 7919u * static_cast<std::uint64_t>(id) + static_cast<std::uint64_t>(r);
          try {
            std::vector<serve::JobHandle> handles;
            std::vector<Matrix<double>> bs;
            std::vector<int> picks;  // pool index per handle, for verification
            if (many_every > 0 && r % many_every == 0) {
              // K independent systems with mixed pool picks in one
              // submit_many call: lands in the size-bucketed staging area.
              std::vector<Matrix<double>> as;
              for (int k = 0; k < many_every; ++k) {
                const int p = static_cast<int>(rng.uniform() * pool_size) % pool_size;
                const Matrix<double>& ak = pool[static_cast<std::size_t>(p)];
                Matrix<double> b(ak.rows(), 1);
                Rng brng(rhs_seed + static_cast<std::uint64_t>(k) * 131);
                for (int i = 0; i < ak.rows(); ++i) b(i, 0) = brng.gaussian();
                picks.push_back(p);
                as.push_back(ak);
                bs.push_back(std::move(b));
              }
              handles = svc.submit_many(as, bs, prio);
            } else if (batch_every > 0 && r % batch_every == 0) {
              for (int k = 0; k < batch_every; ++k) {
                Matrix<double> b(a.rows(), 1);
                Rng brng(rhs_seed + static_cast<std::uint64_t>(k) * 131);
                for (int i = 0; i < a.rows(); ++i) b(i, 0) = brng.gaussian();
                picks.push_back(pick);
                bs.push_back(std::move(b));
              }
              handles = svc.submit_batch(a, bs, prio);
            } else {
              Matrix<double> b(a.rows(), 1 + r % 2);
              Rng brng(rhs_seed);
              for (int j = 0; j < b.cols(); ++j)
                for (int i = 0; i < a.rows(); ++i) b(i, j) = brng.gaussian();
              picks.push_back(pick);
              bs.push_back(b);
              handles.push_back(svc.submit_solve(a, std::move(b), prio));
            }
            for (std::size_t h = 0; h < handles.size(); ++h) {
              handles[h].wait();
              if (handles[h].status() == serve::JobStatus::Rejected) {
                rejected.fetch_add(1);
                continue;
              }
              Matrix<double> x = handles[h].get().x;
              done.fetch_add(1);
              if (verify_results)
                outcomes[static_cast<std::size_t>(id)].push_back(
                    Outcome{picks[h], std::move(bs[h]), std::move(x)});
            }
          } catch (const std::exception& e) {
            // get() rethrows the job's original exception of any type.
            failures.fetch_add(1);
            std::fprintf(stderr, "client %d request %d: %s\n", id, r, e.what());
          } catch (...) {
            failures.fetch_add(1);
            std::fprintf(stderr, "client %d request %d: unknown error\n", id, r);
          }
        }
      };
      std::vector<std::thread> pool_threads;
      pool_threads.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) pool_threads.emplace_back(client, c);
      for (auto& t : pool_threads) t.join();
      svc.drain();
      const double secs = wall.seconds();

      // Verification runs after the timed region: the reference solves are
      // O(n^3) each and must not pollute the service throughput numbers.
      if (verify_results) {
        for (const auto& per_client : outcomes) {
          for (const Outcome& o : per_client) {
            const Matrix<double>& a = pool[static_cast<std::size_t>(o.pick)];
            const Matrix<double> want = reference.solve(a, o.b).x;
            bool ok = o.x.rows() == want.rows() && o.x.cols() == want.cols();
            for (int j = 0; ok && j < want.cols(); ++j)
              for (int i = 0; i < want.rows(); ++i)
                if (o.x(i, j) != want(i, j)) {
                  ok = false;
                  break;
                }
            if (!ok) mismatches.fetch_add(1);
          }
        }
      }

      const serve::ServiceStats s = svc.stats();
      std::printf("\n-- results ------------------------------------------\n");
      std::printf("wall time          %.3fs   (%.1f jobs/s end-to-end)\n", secs,
                  static_cast<double>(done.load()) / secs);
      std::printf("completed          %llu (ok %ld, rejected %ld, failed %llu)\n",
                  static_cast<unsigned long long>(s.completed), done.load(),
                  rejected.load(), static_cast<unsigned long long>(s.failed));
      std::printf("verify             %s (%ld mismatches)\n",
                  verify_results ? (mismatches.load() ? "FAILED" : "bitwise ok")
                                 : "off",
                  mismatches.load());
      std::printf("\n-- service telemetry --------------------------------\n");
      std::printf("queue              depth=%zu capacity=%zu inflight=%zu\n",
                  s.queue_depth, s.queue_capacity, s.inflight);
      std::printf("cache              hits=%llu misses=%llu (%.1f%% hit rate), "
                  "%zu entries, %.1f/%.0f MB, %llu evictions\n",
                  static_cast<unsigned long long>(s.cache.hits),
                  static_cast<unsigned long long>(s.cache.misses),
                  100.0 * s.cache.hit_rate(), s.cache.entries,
                  static_cast<double>(s.cache.bytes) / (1 << 20),
                  static_cast<double>(s.cache.byte_budget) / (1 << 20),
                  static_cast<unsigned long long>(s.cache.evictions));
      std::printf("factorizations     %llu coarse, %llu fine-grained, "
                  "%zu pending\n",
                  static_cast<unsigned long long>(s.factors_coarse),
                  static_cast<unsigned long long>(s.factors_inline_parallel),
                  s.pending_factorizations);
      std::printf("batching           %llu batches / %llu members / %llu fused "
                  "rhs columns\n",
                  static_cast<unsigned long long>(s.batches),
                  static_cast<unsigned long long>(s.batch_members),
                  static_cast<unsigned long long>(s.fused_rhs_columns));
      std::printf("staged batching    %llu jobs / %llu chunks (fill mean %.1f), "
                  "%llu cache hits skimmed\n",
                  static_cast<unsigned long long>(s.batched_jobs),
                  static_cast<unsigned long long>(s.batches_executed),
                  s.batch_fill_mean,
                  static_cast<unsigned long long>(s.batch_hits_skimmed));
      std::printf("latency (us)       p50=%llu p99=%llu max=%llu mean=%.0f\n",
                  static_cast<unsigned long long>(s.latency_p50_us),
                  static_cast<unsigned long long>(s.latency_p99_us),
                  static_cast<unsigned long long>(s.latency_max_us),
                  s.latency_mean_us);
      std::printf("exec (us)          p50=%llu p99=%llu\n",
                  static_cast<unsigned long long>(s.exec_p50_us),
                  static_cast<unsigned long long>(s.exec_p99_us));
      std::printf("throughput         %.1f jobs/s over %.3fs uptime\n",
                  s.jobs_per_second, s.uptime_seconds);
      std::printf("engine             %d workers, %llu tasks, %llu steals, "
                  "%.1f KB workspace\n",
                  s.workers,
                  static_cast<unsigned long long>(s.engine_tasks_executed),
                  static_cast<unsigned long long>(s.engine_steals),
                  static_cast<double>(s.workspace_bytes) / 1024.0);

      if (s.failed != 0 || failures.load() != 0) return 1;
      if (mismatches.load() != 0) return 1;
      if (stress && done.load() < 200) {
        std::fprintf(stderr, "stress: fewer than 200 verified jobs completed\n");
        return 1;
      }
    }
    if (metrics_writer) {
      metrics_writer->stop();  // flushes a final post-drain snapshot
      std::printf("metrics            %llu snapshots -> %s%s%s\n",
                  static_cast<unsigned long long>(
                      metrics_writer->snapshots_written()),
                  metrics_json.c_str(),
                  (!metrics_json.empty() && !metrics_prom.empty()) ? ", " : "",
                  metrics_prom.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
