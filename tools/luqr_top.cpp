// luqr_top — live terminal dashboard over the JSON metrics snapshots that
// luqr_serve --metrics-json (or any obs::SnapshotWriter user) keeps
// rewriting. The writer replaces the file atomically (tmp + rename), so
// this reader never sees a torn snapshot — it just re-reads and re-renders
// on a period, top(1)-style.
//
//   luqr_top [--file F] [--period MS] [--once]
//
//   --file F      snapshot file to watch (default metrics.json)
//   --period MS   refresh period (default 500)
//   --once        render one frame without clearing the screen and exit
//                 (also what CI uses to assert on dashboard content)
//
// Panels: per-kernel-class profile (calls/time/model GFLOP/s), engine
// gauges per engine label (busy fraction, live tasks, ready lanes, steal
// and completion rates), serve job counters with per-phase latency
// histograms, and cache traffic. Counter rates are derived by diffing
// consecutive frames.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// --------------------------------------------------------------------------
// Minimal JSON reader, sized for the machine-generated snapshot format
// (objects, arrays, strings with backslash escapes, numbers). Parse errors
// surface as a null value; the dashboard then just reports a bad frame
// instead of crashing mid-run.
// --------------------------------------------------------------------------

struct JValue {
  enum class Kind { Null, Number, String, Array, Object };
  Kind kind = Kind::Null;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* find(const char* key) const {
    for (const auto& kv : obj)
      if (kv.first == key) return &kv.second;
    return nullptr;
  }
  double number(const char* key, double fallback = 0.0) const {
    const JValue* v = find(key);
    return v != nullptr && v->kind == Kind::Number ? v->num : fallback;
  }
  std::string string_of(const char* key) const {
    const JValue* v = find(key);
    return v != nullptr && v->kind == Kind::String ? v->str : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JValue& out) { return value(out) && (skip_ws(), pos_ == s_.size()); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool string_body(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':  // snapshot writer only emits \u00xx for control chars
            if (pos_ + 4 > s_.size()) return false;
            c = static_cast<char>(
                std::strtol(s_.substr(pos_ + 2, 2).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc; break;
        }
      }
      out += c;
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool value(JValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JValue::Kind::Object;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        std::string key;
        skip_ws();
        if (!string_body(key) || !consume(':')) return false;
        JValue v;
        if (!value(v)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JValue::Kind::Array;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JValue v;
        if (!value(v)) return false;
        out.arr.push_back(std::move(v));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JValue::Kind::String;
      return string_body(out.str);
    }
    // Number (the writer never emits true/false/null).
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    out.kind = JValue::Kind::Number;
    out.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Snapshot model
// --------------------------------------------------------------------------

using LabelMap = std::map<std::string, std::string>;

struct Sample {
  LabelMap labels;
  double value = 0.0;
};

struct HistSample {
  LabelMap labels;
  double count = 0, sum = 0, max = 0, mean = 0, p50 = 0, p90 = 0, p99 = 0;
};

struct Frame {
  double ts_us = 0;
  std::map<std::string, std::vector<Sample>> counters;
  std::map<std::string, std::vector<Sample>> gauges;
  std::map<std::string, std::vector<HistSample>> histograms;

  double counter(const std::string& name) const {
    double total = 0;
    auto it = counters.find(name);
    if (it != counters.end())
      for (const Sample& s : it->second) total += s.value;
    return total;
  }
  double gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it != gauges.end() && !it->second.empty() ? it->second.front().value
                                                    : 0.0;
  }
};

LabelMap parse_labels(const JValue& entry) {
  LabelMap out;
  const JValue* labels = entry.find("labels");
  if (labels != nullptr)
    for (const auto& kv : labels->obj)
      if (kv.second.kind == JValue::Kind::String) out[kv.first] = kv.second.str;
  return out;
}

bool load_frame(const std::string& path, Frame& out, std::string& error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  JValue root;
  if (!JsonParser(text).parse(root) || root.kind != JValue::Kind::Object) {
    error = "unparseable snapshot (" + std::to_string(text.size()) + " bytes)";
    return false;
  }
  out = Frame{};
  out.ts_us = root.number("ts_us");
  const JValue* counters = root.find("counters");
  if (counters != nullptr)
    for (const JValue& c : counters->arr)
      out.counters[c.string_of("name")].push_back(
          Sample{parse_labels(c), c.number("value")});
  const JValue* gauges = root.find("gauges");
  if (gauges != nullptr)
    for (const JValue& g : gauges->arr)
      out.gauges[g.string_of("name")].push_back(
          Sample{parse_labels(g), g.number("value")});
  const JValue* hists = root.find("histograms");
  if (hists != nullptr)
    for (const JValue& h : hists->arr) {
      HistSample hs;
      hs.labels = parse_labels(h);
      hs.count = h.number("count");
      hs.sum = h.number("sum");
      hs.max = h.number("max");
      hs.mean = h.number("mean");
      hs.p50 = h.number("p50");
      hs.p90 = h.number("p90");
      hs.p99 = h.number("p99");
      out.histograms[h.string_of("name")].push_back(std::move(hs));
    }
  return true;
}

// --------------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------------

std::string fmt_count(double v) {
  char buf[32];
  if (v >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v * 1e-9);
  else if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v * 1e-6);
  else if (v >= 1e4) std::snprintf(buf, sizeof(buf), "%.1fk", v * 1e-3);
  else std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string fmt_us(double us) {
  char buf[32];
  if (us >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fs", us * 1e-6);
  else if (us >= 1e3) std::snprintf(buf, sizeof(buf), "%.1fms", us * 1e-3);
  else std::snprintf(buf, sizeof(buf), "%.0fus", us);
  return buf;
}

void render(const Frame& f, const Frame* prev, const std::string& path) {
  // Rates from the previous frame's counters (0 on the first frame).
  const double dt =
      prev != nullptr && f.ts_us > prev->ts_us ? (f.ts_us - prev->ts_us) * 1e-6
                                               : 0.0;
  const auto rate = [&](const std::string& name) {
    return dt > 0 ? (f.counter(name) - prev->counter(name)) / dt : 0.0;
  };

  std::printf("luqr_top — %s\n", path.c_str());

  // -- kernels ------------------------------------------------------------
  auto kit = f.counters.find("luqr_kernel_time_us_total");
  if (kit != f.counters.end()) {
    struct Row {
      std::string cls;
      double time_us = 0, calls = 0, flops = 0;
    };
    std::map<std::string, Row> rows;
    for (const Sample& s : kit->second) {
      auto l = s.labels.find("class");
      if (l == s.labels.end()) continue;
      rows[l->second].cls = l->second;
      rows[l->second].time_us = s.value;
    }
    const auto fill = [&](const char* name, double Row::*field) {
      auto it = f.counters.find(name);
      if (it == f.counters.end()) return;
      for (const Sample& s : it->second) {
        auto l = s.labels.find("class");
        if (l != s.labels.end()) rows[l->second].*field = s.value;
      }
    };
    fill("luqr_kernel_calls_total", &Row::calls);
    fill("luqr_kernel_flops_total", &Row::flops);
    std::vector<Row> sorted;
    double total_us = 0;
    for (auto& kv : rows) {
      total_us += kv.second.time_us;
      if (kv.second.calls > 0) sorted.push_back(kv.second);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const Row& a, const Row& b) { return a.time_us > b.time_us; });
    std::printf("\nkernels (total %s busy)\n", fmt_us(total_us).c_str());
    std::printf("  %-8s %10s %10s %7s %9s\n", "class", "calls", "time",
                "share", "gflop/s");
    for (const Row& r : sorted) {
      const double secs = r.time_us * 1e-6;
      std::printf("  %-8s %10s %10s %6.1f%% %9.2f\n", r.cls.c_str(),
                  fmt_count(r.calls).c_str(), fmt_us(r.time_us).c_str(),
                  total_us > 0 ? 100.0 * r.time_us / total_us : 0.0,
                  secs > 0 ? r.flops * 1e-9 / secs : 0.0);
    }
  }

  // -- engines ------------------------------------------------------------
  auto git = f.gauges.find("luqr_engine_workers");
  if (git != f.gauges.end()) {
    std::printf("\nengines\n");
    for (const Sample& s : git->second) {
      auto l = s.labels.find("engine");
      const std::string eng = l != s.labels.end() ? l->second : "default";
      const auto gauge_of = [&](const char* name) {
        auto it = f.gauges.find(name);
        if (it == f.gauges.end()) return 0.0;
        for (const Sample& g : it->second) {
          auto gl = g.labels.find("engine");
          if (gl != g.labels.end() && gl->second == eng) return g.value;
        }
        return 0.0;
      };
      std::printf("  [%s] %g workers, %.0f%% busy, %g live tasks, "
                  "%.0f steals/s, %.0f tasks/s, %s workspace\n",
                  eng.c_str(), s.value, 100.0 * gauge_of("luqr_engine_busy_fraction"),
                  gauge_of("luqr_engine_live_tasks"),
                  gauge_of("luqr_engine_steals_per_s"),
                  gauge_of("luqr_engine_tasks_per_s"),
                  fmt_count(gauge_of("luqr_engine_workspace_bytes")).c_str());
      auto rit = f.gauges.find("luqr_engine_ready_tasks");
      if (rit != f.gauges.end()) {
        std::printf("        ready lanes:");
        for (const Sample& g : rit->second) {
          auto gl = g.labels.find("engine");
          auto lane = g.labels.find("lane");
          if (gl != g.labels.end() && gl->second == eng && lane != g.labels.end())
            std::printf(" %s:%g", lane->second.c_str(), g.value);
        }
        std::printf("\n");
      }
    }
  }

  // -- serve --------------------------------------------------------------
  if (f.counters.count("luqr_serve_jobs_submitted_total") != 0) {
    std::printf("\nserve\n");
    std::printf("  jobs     submitted=%s completed=%s failed=%s cancelled=%s "
                "rejected=%s",
                fmt_count(f.counter("luqr_serve_jobs_submitted_total")).c_str(),
                fmt_count(f.counter("luqr_serve_jobs_completed_total")).c_str(),
                fmt_count(f.counter("luqr_serve_jobs_failed_total")).c_str(),
                fmt_count(f.counter("luqr_serve_jobs_cancelled_total")).c_str(),
                fmt_count(f.counter("luqr_serve_jobs_rejected_total")).c_str());
    if (dt > 0)
      std::printf("   (%.0f jobs/s)", rate("luqr_serve_jobs_completed_total"));
    std::printf("\n");
    static const struct {
      const char* metric;
      const char* title;
    } kPhases[] = {
        {"luqr_serve_job_latency_us", "latency"},
        {"luqr_serve_job_queue_us", "queue"},
        {"luqr_serve_job_factor_us", "factor"},
        {"luqr_serve_job_solve_us", "solve"},
        {"luqr_serve_job_refine_us", "refine"},
        {"luqr_serve_job_exec_us", "exec"},
    };
    for (const auto& ph : kPhases) {
      auto it = f.histograms.find(ph.metric);
      if (it == f.histograms.end() || it->second.empty()) continue;
      const HistSample& h = it->second.front();
      std::printf("  %-8s p50=%s p90=%s p99=%s max=%s mean=%s (n=%s)\n",
                  ph.title, fmt_us(h.p50).c_str(), fmt_us(h.p90).c_str(),
                  fmt_us(h.p99).c_str(), fmt_us(h.max).c_str(),
                  fmt_us(h.mean).c_str(), fmt_count(h.count).c_str());
    }
  }

  // -- resilience ---------------------------------------------------------
  if (f.counters.count("luqr_serve_shed_total") != 0 ||
      f.gauges.count("luqr_serve_health") != 0) {
    const double health = f.gauge("luqr_serve_health");
    const char* health_name = health >= 2.0   ? "DRAINING"
                              : health >= 1.0 ? "DEGRADED"
                                              : "healthy";
    std::printf("\nresilience\n");
    std::printf("  health=%s  shed=%s retries=%s watchdog_trips=%s "
                "faults_injected=%s memory_pressure=%s",
                health_name,
                fmt_count(f.counter("luqr_serve_shed_total")).c_str(),
                fmt_count(f.counter("luqr_serve_retries_total")).c_str(),
                fmt_count(f.counter("luqr_serve_watchdog_trips_total")).c_str(),
                fmt_count(f.counter("luqr_serve_faults_injected_total")).c_str(),
                fmt_count(f.counter("luqr_serve_memory_pressure_total")).c_str());
    if (dt > 0)
      std::printf("   (%.1f sheds/s, %.1f retries/s)",
                  rate("luqr_serve_shed_total"),
                  rate("luqr_serve_retries_total"));
    std::printf("\n");
  }

  // -- cache --------------------------------------------------------------
  if (f.counters.count("luqr_cache_hits_total") != 0 ||
      f.counters.count("luqr_cache_misses_total") != 0) {
    const double hits = f.counter("luqr_cache_hits_total");
    const double misses = f.counter("luqr_cache_misses_total");
    std::printf("\ncache\n");
    std::printf("  hits=%s misses=%s (%.1f%% hit rate), %s entries, %s bytes, "
                "%s evictions\n",
                fmt_count(hits).c_str(), fmt_count(misses).c_str(),
                hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0,
                fmt_count(f.gauge("luqr_cache_entries")).c_str(),
                fmt_count(f.gauge("luqr_cache_bytes")).c_str(),
                fmt_count(f.counter("luqr_cache_evictions_total")).c_str());
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--file F] [--period MS] [--once]\n", argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "metrics.json";
  int period_ms = 500;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--file") path = need_value();
    else if (arg == "--period") period_ms = std::atoi(need_value());
    else if (arg == "--once") once = true;
    else usage(argv[0]);
  }
  if (period_ms < 50) period_ms = 50;

  Frame frame, prev;
  bool have_prev = false;
  for (;;) {
    std::string error;
    const bool ok = load_frame(path, frame, error);
    if (once) {
      if (!ok) {
        std::fprintf(stderr, "luqr_top: %s\n", error.c_str());
        return 1;
      }
      render(frame, nullptr, path);
      return 0;
    }
    std::printf("\x1b[H\x1b[2J");  // home + clear: top(1)-style refresh
    if (ok) {
      render(frame, have_prev ? &prev : nullptr, path);
      prev = frame;
      have_prev = true;
    } else {
      std::printf("luqr_top — waiting for %s (%s)\n", path.c_str(),
                  error.c_str());
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
  }
}
