// luqr_solve — command-line hybrid solver over Matrix Market files, built on
// the luqr::Solver facade.
//
//   luqr_solve A.mtx [b.mtx] [options]
//
//   --criterion max|sum|mumps|random|always-lu|always-qr   (default max)
//   --alpha <v>        criterion threshold / LU probability (default 100)
//   --lu-fraction <t>  auto-tune alpha to hit this LU-step fraction in [0,1]
//                      (overrides --alpha; max/sum/mumps only)
//   --nb <v>           tile size (default 64)
//   --grid PxQ         logical process grid (default 4x4)
//   --variant A1|A2|B1|B2                                  (default A1)
//   --threads <n>      run the parallel backend with n worker threads
//                      (default: serial backend)
//   --sched M          parallel scheduler mode: continuation (default) or
//                      join — join-per-step, the pre-continuation baseline
//   --no-priorities    disable critical-path task priorities
//   --lookahead N      priority-lane lookahead depth: updates feeding the
//                      next N panel decisions overtake bulk trailing work
//                      (default 2; parallel backend)
//   --trace f.json     write a Chrome-tracing JSON of the parallel
//                      factorization's tasks (open via chrome://tracing)
//   --audit            run the parallel factorization under the dataflow
//                      correctness auditor: validate every task's actual
//                      accesses against its declared set and certify after
//                      the drain that all conflicting pairs are ordered by
//                      declared dependencies (violations abort with details)
//   --chaos-seed N     adversarial schedule exploration: seed N randomizes
//                      queue draining order and injects per-task delays
//                      (results stay bitwise identical; pairs with --audit)
//   --profile          print a per-kernel-class breakdown (gemm / trsm /
//                      getrf / geqrt / ...) of this run from the always-on
//                      kernel profiler: calls, wall time, share and model
//                      GFLOP/s per class, serial or parallel; with --threads
//                      also critical-path length and per-lane task counts
//   --refine <n>       iterative-refinement sweeps (default 0)
//   --precision P      working precision: f64 (default), f32 (single
//                      precision throughout), or f32_ir (factor in f32,
//                      refine the solve back to f64 accuracy; falls back to
//                      an f64 refactorization when refinement stalls)
//   --out x.mtx        write the solution (default: print summary only)
//
// Without b.mtx, a right-hand side with known solution x = ones is
// manufactured so the forward error can be reported too.
#include <cstdio>
#include <cstring>
#include <string>

#include "io/matrix_market.hpp"
#include "luqr.hpp"
#include "obs/kprof.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s A.mtx [b.mtx] [--criterion C] [--alpha V] [--lu-fraction T]\n"
               "       [--nb V] [--grid PxQ] [--variant A1|A2|B1|B2] [--threads N]\n"
               "       [--sched continuation|join] [--no-priorities] [--lookahead N]\n"
               "       [--trace f.json] [--profile] [--audit] [--chaos-seed N]\n"
               "       [--refine N] [--precision f64|f32|f32_ir] [--out x.mtx]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace luqr;
  if (argc < 2) usage(argv[0]);

  std::string a_path, b_path, out_path, trace_path;
  std::string criterion = "max", variant = "A1", sched_mode = "continuation";
  std::string precision = "f64";
  double alpha = 100.0, lu_fraction = -1.0;
  int nb = 64, refine = 0, grid_p = 4, grid_q = 4, threads = 0, lookahead = -1;
  bool priorities = true, profile = false, audit = false;
  unsigned long long chaos_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--criterion") {
      criterion = need_value();
    } else if (arg == "--alpha") {
      alpha = std::strtod(need_value(), nullptr);
    } else if (arg == "--lu-fraction") {
      lu_fraction = std::strtod(need_value(), nullptr);
    } else if (arg == "--nb") {
      nb = std::atoi(need_value());
    } else if (arg == "--threads") {
      threads = std::atoi(need_value());
    } else if (arg == "--refine") {
      refine = std::atoi(need_value());
    } else if (arg == "--precision") {
      precision = need_value();
    } else if (arg == "--variant") {
      variant = need_value();
    } else if (arg == "--sched") {
      sched_mode = need_value();
    } else if (arg == "--no-priorities") {
      priorities = false;
    } else if (arg == "--lookahead") {
      lookahead = std::atoi(need_value());
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--chaos-seed") {
      chaos_seed = std::strtoull(need_value(), nullptr, 10);
    } else if (arg == "--trace") {
      trace_path = need_value();
    } else if (arg == "--grid") {
      const char* v = need_value();
      if (std::sscanf(v, "%dx%d", &grid_p, &grid_q) != 2) usage(argv[0]);
    } else if (arg == "--out") {
      out_path = need_value();
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (a_path.empty()) {
      a_path = arg;
    } else if (b_path.empty()) {
      b_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (a_path.empty()) usage(argv[0]);

  try {
    const Matrix<double> a = io::read_matrix_market_file(a_path);
    LUQR_REQUIRE(a.rows() == a.cols(), "system matrix must be square");
    const int n = a.rows();

    bool manufactured = b_path.empty();
    Matrix<double> b(n, 1);
    if (manufactured) {
      // b = A * ones: known solution for forward-error reporting.
      Matrix<double> ones(n, 1, 1.0);
      kern::gemm(kern::Trans::No, kern::Trans::No, 1.0, a.cview(), ones.cview(),
                 0.0, b.view());
    } else {
      b = io::read_matrix_market_file(b_path);
      LUQR_REQUIRE(b.rows() == n, "rhs row count mismatch");
    }

    LUQR_REQUIRE(threads >= 0, "--threads must be nonnegative");
    SolverConfig config;
    config.tile_size(nb).grid(grid_p, grid_q);
    if (variant == "A2") config.variant(core::LuVariant::A2);
    else if (variant == "B1") config.variant(core::LuVariant::B1);
    else if (variant == "B2") config.variant(core::LuVariant::B2);
    else LUQR_REQUIRE(variant == "A1", "unknown variant: " + variant);
    if (threads > 0) config.backend(Backend::Parallel).threads(threads);
    else config.backend(Backend::Serial);
    if (precision == "f32") config.precision(core::Precision::F32);
    else if (precision == "f32_ir") config.precision(core::Precision::F32_IR);
    else LUQR_REQUIRE(precision == "f64", "unknown precision: " + precision);

    rt::SchedulerOptions sched;
    if (sched_mode == "join") sched.mode = rt::SubmitMode::JoinPerStep;
    else LUQR_REQUIRE(sched_mode == "continuation" || sched_mode == "cont",
                      "unknown scheduler mode: " + sched_mode);
    sched.priorities = priorities;
    if (lookahead >= 0) sched.lookahead = lookahead;
    if (!trace_path.empty()) {
      LUQR_REQUIRE(threads > 0, "--trace requires the parallel backend (--threads)");
      sched.trace = true;
      sched.trace_path = trace_path;
    }
    if (audit) {
      LUQR_REQUIRE(threads > 0, "--audit requires the parallel backend (--threads)");
      sched.audit = true;
    }
    if (chaos_seed != 0) {
      LUQR_REQUIRE(threads > 0,
                   "--chaos-seed requires the parallel backend (--threads)");
      sched.chaos_seed = chaos_seed;
    }
    rt::SchedulerStats sched_stats;
    if (profile)
      LUQR_REQUIRE(obs::kernel_profiler_enabled(),
                   "--profile reads the kernel profiler, which LUQR_KPROF=0 "
                   "disabled in this environment");
    config.scheduler(sched);
    if (threads > 0) config.scheduler_stats(&sched_stats);

    CriterionSpec spec = CriterionSpec::parse(criterion, alpha);
    if (lu_fraction >= 0.0) {
      // Tune up front (rather than inside factor()) so the tuned alpha can
      // be reported and is not re-derived on every solve.
      const Solver tuner(SolverConfig(config).criterion(spec)
                             .autotune_target_lu_fraction(lu_fraction));
      spec = tuner.effective_criterion(a);
      std::printf("auto-tuned alpha: %g (target LU fraction %.2f)\n", spec.alpha,
                  lu_fraction);
    }
    config.criterion(spec);
    const Solver solver(config);

    // Profiler baseline: the registry counters are process-monotonic, so
    // this run's contribution is the snapshot diff around factor+solve.
    const obs::KernelProfile prof_before = obs::kernel_profile();

    Timer timer;
    const core::Factorization fac = solver.factor(a);
    const double t_factor = timer.seconds();
    timer.reset();
    core::SolveReport report;
    const Matrix<double> x = fac.solve(b, &report, refine);
    const double t_solve = timer.seconds();

    std::printf("luqr_solve: N=%d nb=%d criterion=%s grid=%dx%d variant=%s "
                "backend=%s\n",
                n, nb, spec.name().c_str(), grid_p, grid_q, variant.c_str(),
                threads > 0 ? "parallel" : "serial");
    if (threads > 0)
      std::printf("threads: %d   scheduler: %s%s\n", solver.resolve_threads(),
                  sched_mode == "join" ? "join-per-step" : "continuation",
                  priorities ? "" : " (no priorities)");
    if (!trace_path.empty())
      std::printf("task trace written to %s\n", trace_path.c_str());
    if (audit)
      std::printf("audit: %llu tasks validated; access audit and "
                  "happens-before certification passed\n",
                  static_cast<unsigned long long>(sched_stats.audited_tasks));
    if (chaos_seed != 0)
      std::printf("chaos schedule: seed %llu\n", chaos_seed);
    if (profile) {
      // Per-kernel-class breakdown straight from the always-on profiler
      // (obs::KernelScope around every kernel dispatch): exact call counts,
      // wall time and model flops for this factor+solve — no trace
      // reconstruction, and it works for the serial backend too.
      const obs::KernelProfile prof_after = obs::kernel_profile();
      double busy = 0.0;
      std::uint64_t calls_total = 0;
      for (int c = 0; c < obs::kKernelClassCount; ++c) {
        busy += static_cast<double>(prof_after[static_cast<std::size_t>(c)].time_us -
                                    prof_before[static_cast<std::size_t>(c)].time_us) *
                1e-6;
        calls_total += prof_after[static_cast<std::size_t>(c)].calls -
                       prof_before[static_cast<std::size_t>(c)].calls;
      }
      std::printf("\nprofile (kernel time %.3fs across %llu kernel calls):\n",
                  busy, static_cast<unsigned long long>(calls_total));
      std::printf("  %-10s %10s %10s %7s %9s\n", "class", "calls", "time(s)",
                  "share", "gflop/s");
      for (int c = 0; c < obs::kKernelClassCount; ++c) {
        const auto& b0 = prof_before[static_cast<std::size_t>(c)];
        const auto& b1 = prof_after[static_cast<std::size_t>(c)];
        const std::uint64_t calls = b1.calls - b0.calls;
        if (calls == 0) continue;
        const double secs = static_cast<double>(b1.time_us - b0.time_us) * 1e-6;
        const double flops = static_cast<double>(b1.flops - b0.flops);
        std::printf("  %-10s %10llu %10.4f %6.1f%% %9.2f\n",
                    obs::kernel_class_label(static_cast<obs::KernelClass>(c)),
                    static_cast<unsigned long long>(calls), secs,
                    busy > 0 ? 100.0 * secs / busy : 0.0,
                    secs > 0 ? flops * 1e-9 / secs : 0.0);
      }
      if (threads > 0) {
        std::printf("  critical path: %llu tasks   lookahead: %d\n",
                    static_cast<unsigned long long>(sched_stats.critical_path),
                    sched.lookahead);
        std::printf("  lane tasks:");
        for (std::size_t l = 0; l < sched_stats.lane_tasks.size(); ++l)
          std::printf(" L%zu=%llu", l,
                      static_cast<unsigned long long>(sched_stats.lane_tasks[l]));
        std::printf("\n");
      }
    }
    std::printf("steps: %d LU + %d QR (%.1f%% LU)\n", fac.stats().lu_steps,
                fac.stats().qr_steps, 100.0 * fac.stats().lu_fraction());
    std::printf("factor: %.3fs   solve(+%d refinements): %.3fs\n", t_factor,
                refine, t_solve);
    if (fac.precision() != core::Precision::F64)
      std::printf("precision: %s   refine iterations: %d   %s\n",
                  core::to_string(fac.precision()).c_str(),
                  report.refine_iterations,
                  report.fell_back
                      ? "fell back to f64 refactorization"
                      : (report.converged ? "converged" : "NOT converged"));
    std::printf("HPL3: %.3e   relative residual: %.3e\n", verify::hpl3(a, x, b),
                verify::relative_residual(a, x, b));
    if (manufactured) {
      double err = 0.0;
      for (int i = 0; i < n; ++i) err = std::max(err, std::abs(x(i, 0) - 1.0));
      std::printf("forward error vs ones: %.3e\n", err);
    }
    if (!out_path.empty()) {
      io::write_matrix_market_file(out_path, x);
      std::printf("solution written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
