// Stability tour: run the hybrid solver and the baselines over the paper's
// special-matrix gallery (Table III) and see where LU pivoting strategies
// break and where the robustness criterion steps in.
//
//   ./stability_tour [N] [nb] [matrix-name]
//
// Without a matrix name, tours the whole gallery; with one (e.g.
// "wilkinson", "fiedler", "hilb"), zooms in on a single matrix and prints
// the per-step LU/QR decisions of the hybrid run.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "luqr.hpp"

namespace {

using namespace luqr;

void tour_one(gen::MatrixKind kind, int n, int nb, bool verbose) {
  const auto a = gen::generate(kind, n, 42);
  Matrix<double> b(n, 1);
  Rng rng(7);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();

  const Solver solver(SolverConfig()
                          .criterion(CriterionSpec::max(50.0))
                          .tile_size(nb)
                          .grid(4, 1)
                          .backend(Backend::Serial));
  const auto hybrid = solver.solve(a, b);

  const double h_hybrid = verify::hpl3(a, hybrid.x, b);
  const double h_nopiv = verify::hpl3(a, baselines::lu_nopiv_solve(a, b, nb).x, b);
  const double h_lupp = verify::hpl3(a, baselines::lupp_solve(a, b, nb).x, b);
  const double h_hqr = verify::hpl3(a, baselines::hqr_solve(a, b, nb).x, b);

  std::printf("%-12s  hybrid(max50): %9.2e (%3.0f%% LU)   nopiv: %9.2e   "
              "lupp: %9.2e   hqr: %9.2e\n",
              gen::kind_name(kind).c_str(), h_hybrid,
              100.0 * hybrid.stats.lu_fraction(), h_nopiv, h_lupp, h_hqr);
  if (verbose) {
    std::printf("\nper-step decisions (inv-norm of diagonal tile in brackets):\n");
    for (const auto& s : hybrid.stats.steps)
      std::printf("  step %2d: %s  [||A_kk^-1|| ~ %.2e, max below %.2e]\n", s.k,
                  core::to_string(s.kind).c_str(), s.inv_norm_akk, s.max_below);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 384;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 32;

  std::printf("stability tour: N = %d, nb = %d (HPL3 values; O(1) = accurate, "
              "large/inf = failed)\n\n", n, nb);
  if (argc > 3) {
    tour_one(luqr::gen::kind_from_name(argv[3]), n, nb, /*verbose=*/true);
    return 0;
  }
  for (auto kind : luqr::gen::special_set()) tour_one(kind, n, nb, false);
  tour_one(luqr::gen::MatrixKind::Fiedler, n, nb, false);
  std::printf("\nNote how the hybrid tracks HQR-grade stability on the\n"
              "pathological rows while spending LU steps wherever it is safe.\n");
  return 0;
}
