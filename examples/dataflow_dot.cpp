// Figure 1 regeneration: emit the dataflow of hybrid elimination steps as
// Graphviz DOT, showing the Backup-Panel -> LU-On-Panel -> Criterion gate
// and both the LU fan-out and the QR (restore + reduction tree) path.
//
//   ./dataflow_dot [tiles] [steps-pattern] > fig1.dot && dot -Tsvg fig1.dot
//
// steps-pattern is a string of 'L'/'Q' per step, e.g. "LQ" for an LU step
// followed by a QR step (default), on a 2x2 grid with 6 tiles.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "luqr.hpp"
#include "sim/dot_export.hpp"

int main(int argc, char** argv) {
  using namespace luqr::sim;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::string pattern = argc > 2 ? argv[2] : "LQ";

  DagConfig cfg;
  cfg.n = n;
  cfg.nb = 240;
  Platform pl = Platform::dancer_grid(2, 2);

  std::vector<bool> steps(static_cast<std::size_t>(n), true);
  for (int k = 0; k < n && k < static_cast<int>(pattern.size()); ++k)
    steps[static_cast<std::size_t>(k)] = pattern[static_cast<std::size_t>(k)] != 'Q';

  // Emit only the first |pattern| steps by truncating the trailing matrix:
  // the full DAG of a small n is readable enough.
  const SimGraph g = build_luqr_dag(cfg, pl, steps);
  std::fputs(to_dot(g, "luqr hybrid dataflow").c_str(), stdout);
  std::fprintf(stderr,
               "wrote DOT for %zu tasks (%d tiles, pattern %s); render with\n"
               "  dot -Tsvg fig1.dot -o fig1.svg\n",
               g.size(), n, pattern.c_str());
  return 0;
}
