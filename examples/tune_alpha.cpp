// Alpha tuning assistant: sweep the robustness threshold for a chosen
// criterion on a chosen matrix family and print the stability/performance
// trade-off curve — the workflow the paper leaves to the user ("the choice
// of alpha is left to the user", §VII).
//
//   ./tune_alpha [criterion] [matrix] [N] [nb]
//
// criterion in {max, sum, mumps, random}; matrix is any generator name
// (random, wilkinson, hilb, ...). For each alpha the program reports the
// measured %LU steps, the real HPL3, and the *predicted* time on the Dancer
// platform at that LU fraction.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "luqr.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  const std::string criterion = argc > 1 ? argv[1] : "max";
  const std::string matrix = argc > 2 ? argv[2] : "random";
  const int n = argc > 3 ? std::atoi(argv[3]) : 512;
  const int nb = argc > 4 ? std::atoi(argv[4]) : 48;

  const auto kind = gen::kind_from_name(matrix);
  const auto a = gen::generate(kind, n, 11);
  Matrix<double> b(n, 1);
  Rng rng(12);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();

  std::vector<double> alphas;
  if (criterion == "random") {
    alphas = {1.0, 0.75, 0.5, 0.25, 0.0};
  } else if (criterion == "mumps") {
    alphas = {std::numeric_limits<double>::infinity(), 1000.0, 100.0, 10.0, 2.1,
              0.5, 0.0};
  } else {
    alphas = {std::numeric_limits<double>::infinity(), 1000.0, 200.0, 50.0, 10.0,
              1.0, 0.0};
  }

  std::printf("tune_alpha: criterion = %s, matrix = %s, N = %d, nb = %d\n\n",
              criterion.c_str(), matrix.c_str(), n, nb);
  TextTable t;
  t.header({"alpha", "% LU", "HPL3", "pred. Dancer time (s)", "pred. GFLOP/s"});

  const sim::Platform pl = sim::Platform::dancer();
  sim::DagConfig cfg;
  cfg.n = 84;
  cfg.nb = 240;

  const CriterionSpec base_spec = CriterionSpec::parse(criterion, 0.0);
  for (double alpha : alphas) {
    const Solver solver(SolverConfig()
                            .criterion(base_spec.with_alpha(alpha))
                            .tile_size(nb)
                            .grid(4, 4)
                            .backend(Backend::Serial));
    const auto r = solver.solve(a, b);
    const double h = verify::hpl3(a, r.x, b);
    const auto pred = sim::simulate_algorithm(
        sim::Algo::LuQr, cfg, pl,
        sim::spread_lu_steps(cfg.n, r.stats.lu_fraction()));
    char tag[32];
    if (std::isinf(alpha)) {
      std::snprintf(tag, sizeof(tag), "inf");
    } else {
      std::snprintf(tag, sizeof(tag), "%g", alpha);
    }
    t.row({tag, fmt_fixed(100.0 * r.stats.lu_fraction(), 1), fmt_sci(h, 2),
           fmt_fixed(pred.seconds, 2), fmt_fixed(pred.gflops_fake, 1)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npick the largest alpha whose HPL3 you can live with: everything\n"
              "above it buys speed, everything below buys safety margin.\n");

  if (base_spec.tunable()) {
    // Or let the auto-tuner pick the threshold for a target LU fraction.
    core::HybridOptions opt;
    opt.grid_p = 4;
    opt.grid_q = 4;
    const auto tuned = core::auto_tune_alpha(a, base_spec, 0.5, nb, opt);
    std::printf("\nauto-tuner: %s hits %.0f%% LU at the 50%% target "
                "(%d evaluations)\n",
                tuned.spec.name().c_str(), 100.0 * tuned.achieved_lu_fraction,
                tuned.evaluations);
  }
  return 0;
}
