// Cluster what-if: use the discrete-event simulator to predict how the
// algorithms behave on a distributed machine you describe on the command
// line — the tool you reach for before buying nodes or picking a solver.
//
//   ./cluster_sim [p] [q] [cores/node] [N] [nb]
//
// Prints the Table-II style comparison for that machine, sweeping the
// hybrid's LU fraction.
#include <cstdio>
#include <cstdlib>

#include "luqr.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::sim;

  Platform pl = Platform::dancer();
  pl.p = argc > 1 ? std::atoi(argv[1]) : 4;
  pl.q = argc > 2 ? std::atoi(argv[2]) : 4;
  pl.cores_per_node = argc > 3 ? std::atoi(argv[3]) : 8;
  const int bigN = argc > 4 ? std::atoi(argv[4]) : 20160;
  const int nb = argc > 5 ? std::atoi(argv[5]) : 240;

  DagConfig cfg;
  cfg.nb = nb;
  cfg.n = bigN / nb;

  std::printf("cluster_sim: %dx%d nodes x %d cores (peak %.0f GFLOP/s), "
              "N = %d, nb = %d\n\n",
              pl.p, pl.q, pl.cores_per_node, pl.peak_gflops(), cfg.n * nb, nb);

  TextTable t;
  t.header({"algorithm", "time (s)", "GFLOP/s", "% peak", "messages", "GB moved"});
  auto row = [&](const std::string& name, const AlgoReport& r) {
    t.row({name, fmt_fixed(r.seconds, 2), fmt_fixed(r.gflops_fake, 1),
           fmt_fixed(r.pct_peak_fake, 1), std::to_string(r.raw.messages),
           fmt_fixed(r.raw.comm_bytes / 1e9, 2)});
  };

  row("LU NoPiv (unstable!)", simulate_algorithm(Algo::LuNoPiv, cfg, pl));
  row("LU IncPiv", simulate_algorithm(Algo::LuIncPiv, cfg, pl));
  for (double f : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    char name[64];
    std::snprintf(name, sizeof(name), "LUQR hybrid (%3.0f%% LU)", 100.0 * f);
    row(name, simulate_algorithm(Algo::LuQr, cfg, pl,
                                 spread_lu_steps(cfg.n, f)));
  }
  row("HQR", simulate_algorithm(Algo::Hqr, cfg, pl));
  row("LUPP (ScaLAPACK-style)", simulate_algorithm(Algo::Lupp, cfg, pl));
  std::printf("%s\n", t.str().c_str());
  std::printf("reading: the hybrid's payoff is the gap between its 100%%-LU row\n"
              "and HQR; the criterion decides where on that line a given matrix\n"
              "lands. The 0%%-LU row vs HQR is the decision-process overhead.\n");
  return 0;
}
