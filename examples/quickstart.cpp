// Quickstart: solve a dense linear system with the hybrid LU-QR algorithm.
//
//   ./quickstart [N] [nb] [alpha]
//
// Builds a random N x N system, solves it with the Max criterion at the
// given threshold on a logical 4x4 grid, and reports the LU/QR step mix and
// the HPL accuracy metric — the 30-second tour of the library's public API.
#include <cstdio>
#include <cstdlib>

#include "luqr.hpp"

int main(int argc, char** argv) {
  using namespace luqr;

  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 48;
  const double alpha_value = argc > 3 ? std::strtod(argv[3], nullptr) : 100.0;

  std::printf("luqr quickstart: N = %d, nb = %d, Max criterion alpha = %g\n\n",
              n, nb, alpha_value);

  // 1. Build a problem: A random Gaussian, b random.
  const Matrix<double> a = gen::generate(gen::MatrixKind::Random, n, /*seed=*/1);
  Matrix<double> b(n, 1);
  Rng rng(2);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();

  // 2. Pick a robustness criterion and a configuration.
  MaxCriterion criterion(alpha_value);
  core::HybridOptions options;
  options.grid_p = 4;  // logical 4x4 process grid (paper's default)
  options.grid_q = 4;
  options.tree = {hqr::LocalTree::Greedy, hqr::DistTree::Fibonacci};

  // 3. Solve.
  Timer timer;
  const core::SolveResult result = core::hybrid_solve(a, b, criterion, nb, options);
  const double seconds = timer.seconds();

  // 4. Inspect the outcome.
  std::printf("steps: %d LU + %d QR  (%.1f%% LU)\n", result.stats.lu_steps,
              result.stats.qr_steps, 100.0 * result.stats.lu_fraction());
  for (const auto& step : result.stats.steps)
    std::printf("  step %2d -> %s\n", step.k, core::to_string(step.kind).c_str());

  const double hpl3 = verify::hpl3(a, result.x, b);
  const double res = verify::relative_residual(a, result.x, b);
  std::printf("\nHPL3 accuracy: %.3e   (HPL pass threshold is O(1))\n", hpl3);
  std::printf("relative residual: %.3e\n", res);
  std::printf("time: %.3fs (%.2f normalized GFLOP/s)\n", seconds,
              (2.0 / 3.0) * n * double(n) * n / seconds / 1e9);
  return hpl3 < 16.0 ? 0 : 1;
}
