// Quickstart: solve a dense linear system with the hybrid LU-QR algorithm
// through the luqr::Solver facade.
//
//   ./quickstart [N] [nb] [alpha]
//
// Builds a random N x N system, configures a Solver (Max criterion at the
// given threshold, logical 4x4 grid, automatic backend selection), solves
// one-shot, then shows the solve-many workflow: factor once, serve several
// right-hand sides from the retained factorization — the 30-second tour of
// the library's public API.
#include <cstdio>
#include <cstdlib>

#include "luqr.hpp"

int main(int argc, char** argv) {
  using namespace luqr;

  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 48;
  const double alpha_value = argc > 3 ? std::strtod(argv[3], nullptr) : 100.0;

  std::printf("luqr quickstart: N = %d, nb = %d, Max criterion alpha = %g\n\n",
              n, nb, alpha_value);

  // 1. Build a problem: A random Gaussian, b random.
  const Matrix<double> a = gen::generate(gen::MatrixKind::Random, n, /*seed=*/1);
  Matrix<double> b(n, 1);
  Rng rng(2);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();

  // 2. Configure once: criterion, tiling, grid, trees, backend.
  const Solver solver(SolverConfig()
                          .criterion(CriterionSpec::max(alpha_value))
                          .tile_size(nb)
                          .grid(4, 4)  // logical 4x4 process grid (paper's default)
                          .trees({hqr::LocalTree::Greedy, hqr::DistTree::Fibonacci})
                          .backend(Backend::Auto));

  // 3. One-shot solve.
  Timer timer;
  const core::SolveResult result = solver.solve(a, b);
  const double seconds = timer.seconds();

  // 4. Inspect the outcome.
  std::printf("steps: %d LU + %d QR  (%.1f%% LU)\n", result.stats.lu_steps,
              result.stats.qr_steps, 100.0 * result.stats.lu_fraction());
  for (const auto& step : result.stats.steps)
    std::printf("  step %2d -> %s\n", step.k, core::to_string(step.kind).c_str());

  const double hpl3 = verify::hpl3(a, result.x, b);
  const double res = verify::relative_residual(a, result.x, b);
  std::printf("\nHPL3 accuracy: %.3e   (HPL pass threshold is O(1))\n", hpl3);
  std::printf("relative residual: %.3e\n", res);
  std::printf("time: %.3fs (%.2f normalized GFLOP/s)\n", seconds,
              (2.0 / 3.0) * n * double(n) * n / seconds / 1e9);

  // 5. Solve-many workload: factor once, serve several right-hand sides.
  //    Factorization::solve is const and thread-safe, so in a server these
  //    calls could come from concurrent request handlers.
  const core::Factorization fac = solver.factor(a);
  double worst = 0.0;
  for (int s = 0; s < 3; ++s) {
    Matrix<double> bs(n, 1);
    Rng rs(100 + static_cast<std::uint64_t>(s));
    for (int i = 0; i < n; ++i) bs(i, 0) = rs.gaussian();
    const Matrix<double> xs = fac.solve(bs);
    const double r = verify::relative_residual(a, xs, bs);
    if (r > worst) worst = r;
  }
  std::printf("retained factorization: 3 extra solves, worst residual %.3e\n",
              worst);
  return hpl3 < 16.0 ? 0 : 1;
}
