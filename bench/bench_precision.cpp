// Mixed-precision benchmark: what does factoring in f32 buy, and what does
// iterative refinement cost to buy the f64 accuracy back?
//
// Three sections:
//   1. factorization rate, f32 vs f64, across tile sizes — the headline
//      speedup the reduced-precision path exists for (CI enforces a 1.4x
//      floor at nb >= 128);
//   2. end-to-end solve, F32_IR vs F64, well- and ill-conditioned — wall
//      time, residual, refinement iterations, fallback;
//   3. a conditioning sweep: how iteration count grows and where the f64
//      fallback takes over as kappa climbs through 1/eps_f32.
//
// Scales via LUQR_N / LUQR_SAMPLES; `--json <path>` writes the
// machine-readable report (BENCH_precision.json at the repo root).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "verify/verify.hpp"

namespace luqr {
namespace {

Matrix<float> narrow(const Matrix<double>& a) {
  Matrix<float> f(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) f(i, j) = static_cast<float>(a(i, j));
  return f;
}

// Serial factorization rate at one (type, nb). The CI-floored headline rows
// pin the criterion to AlwaysLU so every step runs the GEMM-dominated LU
// update — the path reduced precision accelerates — instead of letting the
// random ensemble's panel statistics tip steps into the (much slower, flop-
// heavier) QR propagation and turn the ratio into a criterion benchmark.
// Returns GFLOP/s against the 2/3 n^3 LU flop count. The tiles are rebuilt
// outside the timed region each sample.
template <typename T>
double factor_rate(const Matrix<T>& dense, int n, int nb, int samples) {
  const double flops = (2.0 / 3.0) * n * static_cast<double>(n) * n;
  double best = std::numeric_limits<double>::infinity();
  for (int s = 0; s < samples; ++s) {
    TileMatrix<T> tiles = TileMatrix<T>::from_dense(dense, nb);
    AlwaysLU crit;
    Timer timer;
    core::hybrid_factor(tiles, crit, {});
    best = std::min(best, timer.seconds());
  }
  return flops / best / 1e9;
}

void bench_factor_rates(bench::JsonReport& report, int n, int samples) {
  const auto a64 = gen::generate(gen::MatrixKind::Random, n, 77);
  const auto a32 = narrow(a64);
  std::printf("factorization rate (serial, all-LU steps, n = %d)\n", n);
  std::printf("  %-6s %12s %12s %9s\n", "nb", "f64 GF/s", "f32 GF/s",
              "speedup");
  for (int nb : {64, 128, 256}) {
    const double g64 = factor_rate(a64, n, nb, samples);
    const double g32 = factor_rate(a32, n, nb, samples);
    const double speedup = g32 / g64;
    std::printf("  %-6d %12.2f %12.2f %8.2fx\n", nb, g64, g32, speedup);
    report.row("factor_f64").metric("nb", nb).metric("gflops", g64);
    report.row("factor_f32").metric("nb", nb).metric("gflops", g32);
    report.row("factor_speedup").metric("nb", nb).metric("speedup", speedup);
  }
  std::printf("\n");
}

void bench_solves(bench::JsonReport& report, int n, int nb, int samples) {
  struct Case {
    const char* tag;
    gen::MatrixKind kind;
  };
  const Case cases[] = {{"well_conditioned", gen::MatrixKind::DiagDominant},
                        {"ill_conditioned", gen::MatrixKind::Chebvand}};
  std::printf("end-to-end solve, F32_IR vs F64 (n = %d, nb = %d)\n", n, nb);
  std::printf("  %-18s %10s %10s %7s %6s %10s %10s\n", "matrix", "f64 ms",
              "f32_ir ms", "iters", "fb", "res f64", "res f32_ir");
  for (const Case& c : cases) {
    const auto a = gen::generate(c.kind, n, 88);
    const auto b = bench::rhs_for(n);
    const SolverConfig base =
        SolverConfig().tile_size(nb).backend(Backend::Serial);

    const double t64 = bench::best_of(samples, 1, [&] {
      (void)Solver(SolverConfig(base).precision(Precision::F64)).solve(a, b);
    });
    const double tir = bench::best_of(samples, 1, [&] {
      (void)Solver(SolverConfig(base).precision(Precision::F32_IR)).solve(a, b);
    });
    const auto r64 =
        Solver(SolverConfig(base).precision(Precision::F64)).solve(a, b);
    const auto rir =
        Solver(SolverConfig(base).precision(Precision::F32_IR)).solve(a, b);
    const double res64 = verify::relative_residual(a, r64.x, b);
    const double resir = verify::relative_residual(a, rir.x, b);
    std::printf("  %-18s %10.2f %10.2f %7d %6s %10.2e %10.2e\n", c.tag,
                t64 * 1e3, tir * 1e3, rir.report.refine_iterations,
                rir.report.fell_back ? "yes" : "no", res64, resir);
    report.row(std::string("solve_") + c.tag)
        .metric("n", n)
        .metric("nb", nb)
        .metric("f64_seconds", t64)
        .metric("f32_ir_seconds", tir)
        .metric("f32_ir_over_f64", tir / t64)
        .metric("refine_iterations", rir.report.refine_iterations)
        .metric("fell_back", rir.report.fell_back ? 1 : 0)
        .metric("residual_f64", res64)
        .metric("residual_f32_ir", resir);
  }
  std::printf("\n");
}

void bench_condition_sweep(bench::JsonReport& report, int n, int nb) {
  // From benign to numerically hostile: iteration count should climb with
  // kappa until kappa * eps_f32 ~ 1, past which the f64 fallback serves.
  const gen::MatrixKind kinds[] = {
      gen::MatrixKind::DiagDominant, gen::MatrixKind::Random,
      gen::MatrixKind::Lehmer,       gen::MatrixKind::Dorr,
      gen::MatrixKind::Chebvand,     gen::MatrixKind::Lotkin,
      gen::MatrixKind::Hilb,
  };
  std::printf("conditioning sweep, F32_IR (n = %d, nb = %d)\n", n, nb);
  std::printf("  %-14s %7s %6s %10s\n", "matrix", "iters", "fb", "residual");
  for (const auto kind : kinds) {
    const auto a = gen::generate(kind, n, 99);
    const auto b = bench::rhs_for(n, 909);
    const auto r = Solver(SolverConfig()
                              .tile_size(nb)
                              .backend(Backend::Serial)
                              .precision(Precision::F32_IR))
                       .solve(a, b);
    std::printf("  %-14s %7d %6s %10.2e\n", gen::kind_name(kind).c_str(),
                r.report.refine_iterations, r.report.fell_back ? "yes" : "no",
                r.report.residual);
    report.row("sweep_" + gen::kind_name(kind))
        .metric("refine_iterations", r.report.refine_iterations)
        .metric("fell_back", r.report.fell_back ? 1 : 0)
        .metric("converged", r.report.converged ? 1 : 0)
        .metric("residual", r.report.residual);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace luqr

int main(int argc, char** argv) {
  using namespace luqr;
  const bench::Config c = bench::config(/*default_n=*/512, /*default_nb=*/128);

  bench::JsonReport report("bench_precision", argc, argv);
  report.config("n", c.n_max);
  report.config("nb", c.nb);
  report.config("samples", c.samples);

  bench_factor_rates(report, c.n_max, c.samples);
  bench_solves(report, c.n_max, c.nb, c.samples);
  bench_condition_sweep(report, 256 <= c.n_max ? 256 : c.n_max, 64);

  report.write();
  return 0;
}
