// bench_panel — blocked vs seed critical-path kernels.
//
// The factorization's critical path retires through the panel kernels
// (GETRF / GEQRT) and the triangular solves (TRSM); every trailing update
// and the next Propagate decision wait on them. This bench times the blocked
// implementations against the seed's unblocked loops across tile sizes and
// records the speedups the CI perf-smoke job asserts (>= 1.5x for getrf and
// geqrt at nb >= 128).
//
//   rows: {getrf,getrf_tall,geqrt,trsm_left,trsm_right}_{blocked,seed,speedup}
//   nb:   {32, 64, 128, 256}
//
// Scale knobs:
//   LUQR_SAMPLES   best-of-N samples per row              (default 3)
//   LUQR_FLOPS     target flops per timing sample         (default 2e8)
//
// Machine-readable record: `--json BENCH_panel.json` (kept at the repo root
// alongside BENCH_kernels.json; regenerate with build/bench_panel).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/pack.hpp"

namespace {

using namespace luqr;
using namespace luqr::kern;

int g_samples = 3;
double g_target_flops = 2e8;

Matrix<double> rnd(int m, int n, std::uint64_t seed) {
  Matrix<double> a(m, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) a(i, j) = rng.gaussian();
  return a;
}

Matrix<double> rnd_lower(int n, std::uint64_t seed) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) a(i, j) = rng.gaussian();
    a(j, j) += 4.0;
  }
  return a;
}

Matrix<double> rnd_upper(int n, std::uint64_t seed) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) a(i, j) = rng.gaussian();
    a(j, j) += 4.0;
  }
  return a;
}

long reps_for(double flops) {
  return std::max(1L, static_cast<long>(g_target_flops / flops));
}

TextTable& table() {
  static TextTable t = [] {
    TextTable t0;
    t0.header({"kernel", "nb", "GFLOP/s", "best s", "reps"});
    return t0;
  }();
  return t;
}

template <typename F>
double run_case(bench::JsonReport& report, const std::string& name, int nb,
                double flops, F&& fn) {
  const long reps = reps_for(flops);
  const double secs = bench::best_of(g_samples, reps, fn);
  const double gflops = flops / secs / 1e9;
  table().row({name, std::to_string(nb), fmt_fixed(gflops, 2),
               fmt_sci(secs, 3), std::to_string(reps)});
  report.row(name)
      .metric("nb", nb)
      .metric("gflops", gflops)
      .metric("best_seconds", secs)
      .metric("reps", reps)
      .metric("samples", g_samples);
  return gflops;
}

void speedup_row(bench::JsonReport& report, const std::string& base, int nb,
                 double blocked, double seed) {
  const double speedup = blocked / seed;
  table().row({base + "_speedup", std::to_string(nb),
               fmt_fixed(speedup, 2) + "x", "", ""});
  report.row(base + "_speedup").metric("nb", nb).metric("speedup", speedup);
}

// Blocked vs seed GETRF on an m x nb panel (m == nb: a tile; m == 4*nb: the
// stacked domain-panel shape the hybrid driver factors every step).
void bench_getrf(bench::JsonReport& report, const char* base, int m, int nb) {
  const auto a0 = rnd(m, nb, 11);
  std::vector<int> piv;
  // flops of an m x n LU panel: n^2 (m - n/3).
  const double flops =
      static_cast<double>(nb) * nb * (m - static_cast<double>(nb) / 3.0);
  const double blocked = run_case(report, std::string(base) + "_blocked", nb,
                                  flops, [&] {
                                    auto a = a0;
                                    getrf_blocked(a.view(), piv);
                                  });
  const double seed = run_case(report, std::string(base) + "_seed", nb, flops,
                               [&] {
                                 auto a = a0;
                                 getrf_unblocked(a.view(), piv);
                               });
  speedup_row(report, base, nb, blocked, seed);
}

void bench_geqrt(bench::JsonReport& report, int nb) {
  const auto a0 = rnd(nb, nb, 14);
  Matrix<double> t(nb, nb);
  const double flops = (4.0 / 3.0) * nb * nb * nb;
  const double blocked = run_case(report, "geqrt_blocked", nb, flops, [&] {
    auto a = a0;
    geqrt_blocked(a.view(), t.view());
  });
  const double seed = run_case(report, "geqrt_seed", nb, flops, [&] {
    auto a = a0;
    geqrt_unblocked(a.view(), t.view());
  });
  speedup_row(report, "geqrt", nb, blocked, seed);
}

void bench_trsm(bench::JsonReport& report, int nb) {
  // Each rep solves a fresh copy of B (a triangular solve is in-place;
  // re-solving the same buffer would hand the two paths different operand
  // values and eventually denormals). The copy is O(nb^2) against the
  // solve's O(nb^3) and identical for both paths.
  // Left / Lower / Unit — the SWPTRSM apply of every LU step.
  {
    const auto l = rnd_lower(nb, 12);
    const auto b0 = rnd(nb, nb, 13);
    const double flops = 1.0 * nb * nb * nb;
    const double blocked =
        run_case(report, "trsm_left_blocked", nb, flops, [&] {
          auto b = b0;
          trsm_blocked(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
                       l.cview(), b.view());
        });
    const double seed = run_case(report, "trsm_left_seed", nb, flops, [&] {
      auto b = b0;
      trsm_unblocked(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
                     l.cview(), b.view());
    });
    speedup_row(report, "trsm_left", nb, blocked, seed);
  }
  // Right / Upper / NonUnit — the eliminate solve of every LU step.
  {
    const auto u = rnd_upper(nb, 15);
    const auto b0 = rnd(nb, nb, 16);
    const double flops = 1.0 * nb * nb * nb;
    const double blocked =
        run_case(report, "trsm_right_blocked", nb, flops, [&] {
          auto b = b0;
          trsm_blocked(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                       u.cview(), b.view());
        });
    const double seed = run_case(report, "trsm_right_seed", nb, flops, [&] {
      auto b = b0;
      trsm_unblocked(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                     u.cview(), b.view());
    });
    speedup_row(report, "trsm_right", nb, blocked, seed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_samples = static_cast<int>(env_long("LUQR_SAMPLES", 3));
  g_target_flops = env_double("LUQR_FLOPS", 2e8);

  bench::JsonReport report("bench_panel", argc, argv);
  const PanelBlocking& pb = panel_blocking();
  const TrsmBlocking& tb = trsm_blocking();
  report.config("panel_jb", pb.jb);
  report.config("panel_small_n", pb.small_n);
  report.config("trsm_kb", tb.kb);
  report.config("trsm_small_m", tb.small_m);
  report.config("samples", g_samples);
  report.config("target_flops", g_target_flops);

  for (int nb : {32, 64, 128, 256}) {
    bench_getrf(report, "getrf", nb, nb);
    bench_getrf(report, "getrf_tall", 4 * nb, nb);
    bench_geqrt(report, nb);
    bench_trsm(report, nb);
  }

  std::printf("%s", table().str().c_str());
  report.write();
  return 0;
}
