// Figure 2, column 1 reproduction (all four rows): relative stability —
// HPL3 divided by LUPP's HPL3 on the same ensemble — versus matrix size,
// for the Max, Sum and MUMPS criteria across an alpha sweep, the Random
// criterion across LU-probabilities, and the LU NoPiv / LU IncPiv / HQR
// baselines. Real numerics at laptop scale (LUQR_N / LUQR_NB / LUQR_SAMPLES
// scale it up).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  const auto c = config(/*n=*/768, /*nb=*/48, /*samples=*/3);
  const double inf = std::numeric_limits<double>::infinity();
  core::HybridOptions opt;  // the paper's 4x4 grid
  opt.grid_p = 4;
  opt.grid_q = 4;

  std::vector<int> sizes;
  for (int n = c.n_max / 3; n <= c.n_max; n += c.n_max / 3) sizes.push_back(n);

  bench::JsonReport json("bench_fig2_stability", argc, argv);
  json.config("nb", c.nb);
  json.config("samples", c.samples);
  json.config("n_max", c.n_max);

  std::printf("=== Figure 2, col 1: relative HPL3 (ratio to LUPP), random matrices ===\n");
  std::printf("nb = %d, %d samples per point; ratio ~1 means LUPP-grade stability\n\n",
              c.nb, c.samples);

  struct Row {
    const char* criterion;
    double alpha;
  };
  const std::vector<std::pair<const char*, std::vector<double>>> sweeps = {
      {"max", {inf, 200.0, 100.0, 50.0, 0.0}},
      {"sum", {inf, 500.0, 100.0, 20.0, 0.0}},
      {"mumps", {inf, 1000.0, 100.0, 30.0, 2.1, 0.0}},
      {"random", {1.0, 0.75, 0.5, 0.25, 0.0}},
  };

  for (const auto& [criterion, alphas] : sweeps) {
    std::printf("--- criterion: %s ---\n", criterion);
    TextTable t;
    {
      std::vector<std::string> header = {"alpha \\ N"};
      for (int n : sizes) header.push_back(std::to_string(n));
      t.header(header);
    }
    for (double alpha : alphas) {
      char tag[32];
      if (std::isinf(alpha)) {
        std::snprintf(tag, sizeof(tag), "inf");
      } else {
        std::snprintf(tag, sizeof(tag), "%g", alpha);
      }
      std::vector<std::string> row = {tag};
      for (int n : sizes) {
        const double lupp = lupp_hpl3_random(n, c.nb, c.samples);
        const auto out =
            run_hybrid_random(criterion, alpha, n, c.nb, c.samples, opt);
        row.push_back(fmt_ratio(out.mean_hpl3 / lupp));
        json.row(std::string(criterion) + "_a" + tag)
            .metric("n", n)
            .metric("hpl3_ratio_to_lupp", out.mean_hpl3 / lupp);
      }
      t.row(row);
    }
    std::printf("%s\n", t.str().c_str());
  }

  std::printf("--- baselines ---\n");
  TextTable t;
  {
    std::vector<std::string> header = {"algorithm \\ N"};
    for (int n : sizes) header.push_back(std::to_string(n));
    t.header(header);
  }
  for (const char* algo : {"lu-nopiv", "lu-incpiv", "hqr"}) {
    std::vector<std::string> row = {algo};
    for (int n : sizes) {
      const double lupp = lupp_hpl3_random(n, c.nb, c.samples);
      double h = 0.0;
      for (int s = 0; s < c.samples; ++s) {
        const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
        const auto b = rhs_for(n, 100 + s);
        core::SolveResult r;
        if (std::string(algo) == "lu-nopiv") {
          r = baselines::lu_nopiv_solve(a, b, c.nb);
        } else if (std::string(algo) == "lu-incpiv") {
          r = baselines::lu_incpiv_solve(a, b, c.nb);
        } else {
          r = baselines::hqr_solve(a, b, c.nb);
        }
        h += verify::hpl3(a, r.x, b) / c.samples;
      }
      row.push_back(fmt_ratio(h / lupp));
      json.row(algo).metric("n", n).metric("hpl3_ratio_to_lupp", h / lupp);
    }
    t.row(row);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expected shape (paper): small alpha -> ratio ~1 (QR-grade); alpha=inf\n"
              "close to 1 on random matrices thanks to diagonal-domain pivoting;\n"
              "LU NoPiv and LU IncPiv drift well above 1 as N grows.\n");
  json.write();
  return 0;
}
