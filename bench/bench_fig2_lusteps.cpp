// Figure 2, column 3 reproduction: percentage of LU steps versus matrix
// size for each criterion and threshold, on random matrices (real
// numerics). Each criterion has its own useful alpha range — exactly the
// paper's observation — and smaller alpha means fewer LU steps.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  const auto c = config(/*n=*/768, /*nb=*/48, /*samples=*/3);
  const double inf = std::numeric_limits<double>::infinity();
  core::HybridOptions opt;  // the paper's 4x4 grid
  opt.grid_p = 4;
  opt.grid_q = 4;

  std::vector<int> sizes;
  for (int n = c.n_max / 3; n <= c.n_max; n += c.n_max / 3) sizes.push_back(n);

  bench::JsonReport json("bench_fig2_lusteps", argc, argv);
  json.config("nb", c.nb);
  json.config("samples", c.samples);
  json.config("n_max", c.n_max);

  std::printf("=== Figure 2, col 3: %%LU steps vs N, random matrices (real runs) ===\n");
  std::printf("nb = %d, %d samples per point\n\n", c.nb, c.samples);

  const std::vector<std::pair<const char*, std::vector<double>>> sweeps = {
      {"max", {inf, 200.0, 100.0, 50.0, 0.0}},
      {"sum", {inf, 500.0, 100.0, 20.0, 0.0}},
      {"mumps", {inf, 1000.0, 100.0, 30.0, 2.1, 0.0}},
      {"random", {1.0, 0.75, 0.5, 0.25, 0.0}},
  };

  for (const auto& [criterion, alphas] : sweeps) {
    std::printf("--- criterion: %s ---\n", criterion);
    TextTable t;
    {
      std::vector<std::string> header = {"alpha \\ N"};
      for (int n : sizes) header.push_back(std::to_string(n));
      t.header(header);
    }
    for (double alpha : alphas) {
      char tag[32];
      if (std::isinf(alpha)) {
        std::snprintf(tag, sizeof(tag), "inf");
      } else {
        std::snprintf(tag, sizeof(tag), "%g", alpha);
      }
      std::vector<std::string> row = {tag};
      for (int n : sizes) {
        const auto out =
            run_hybrid_random(criterion, alpha, n, c.nb, c.samples, opt);
        row.push_back(fmt_fixed(100.0 * out.mean_lu_fraction, 1));
        json.row(std::string(criterion) + "_a" + tag)
            .metric("n", n)
            .metric("lu_fraction", out.mean_lu_fraction);
      }
      t.row(row);
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf("expected shape (paper): monotone in alpha per criterion; each\n"
              "criterion needs a different alpha range to cover 0..100%% LU.\n");
  json.write();
  return 0;
}
