// bench_scheduler — join-per-step vs continuation scheduling on the
// task-parallel hybrid driver.
//
// Factors a LUQR_TILES x LUQR_TILES tile matrix (default 32x32, nb from
// LUQR_NB, default 16) with LUQR_THREADS workers (default 8) in both
// scheduler modes and reports factor time, tasks/second, steal counts, and
// the decision lookahead depth (how many steps behind the panel task the
// oldest still-running update is — measured from a traced run, so it is
// reported separately from the untraced timing runs).
//
//   LUQR_TILES    tile rows/cols of the square part    (default 32)
//   LUQR_NB       tile size                            (default 16)
//   LUQR_THREADS  worker threads                       (default 8)
//   LUQR_ALPHA    max-criterion threshold              (default 20)
//   LUQR_SAMPLES  timed runs per mode                  (default 3)
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace luqr;

struct ModeResult {
  double best_seconds = 0.0;
  double tasks_per_sec = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  double lookahead_avg = 0.0;
  int lookahead_max = 0;
};

// Decision lookahead from a traced run: for each panel task of step k, the
// oldest step with a task still unfinished when the panel started.
void lookahead_from_trace(const std::vector<rt::TraceEvent>& events,
                          ModeResult* out) {
  double sum = 0.0;
  int count = 0;
  for (const auto& panel : events) {
    if (panel.name != "panel" || panel.tag <= 0) continue;
    int oldest = panel.tag;
    for (const auto& e : events)
      if (e.tag >= 0 && e.tag < oldest && e.end_us > panel.start_us)
        oldest = e.tag;
    const int depth = panel.tag - oldest;
    sum += depth;
    out->lookahead_max = std::max(out->lookahead_max, depth);
    ++count;
  }
  out->lookahead_avg = count > 0 ? sum / count : 0.0;
}

ModeResult run_mode(const Matrix<double>& dense, int nb, int threads,
                    double alpha, int samples, rt::SubmitMode mode) {
  ModeResult r;
  core::HybridOptions opt;
  opt.grid_p = 4;
  opt.grid_q = 4;

  rt::SchedulerOptions sched;
  sched.mode = mode;

  r.best_seconds = 1e30;
  for (int s = 0; s < samples + 1; ++s) {  // first run is warmup
    TileMatrix<double> tiles = TileMatrix<double>::from_dense(dense, nb);
    MaxCriterion criterion(alpha);
    rt::SchedulerStats stats;
    Timer timer;
    rt::parallel_hybrid_factor(tiles, criterion, opt, threads, nullptr, sched,
                               &stats);
    const double t = timer.seconds();
    if (s == 0) continue;
    r.best_seconds = std::min(r.best_seconds, t);
    r.tasks = stats.tasks_executed;
    r.steals = stats.steals;
  }
  r.tasks_per_sec = static_cast<double>(r.tasks) / r.best_seconds;

  // Separate traced run for the lookahead analysis (tracing adds per-task
  // overhead, so it never pollutes the timing above).
  {
    TileMatrix<double> tiles = TileMatrix<double>::from_dense(dense, nb);
    MaxCriterion criterion(alpha);
    rt::SchedulerOptions traced = sched;
    traced.trace = true;
    rt::SchedulerStats stats;
    rt::parallel_hybrid_factor(tiles, criterion, opt, threads, nullptr, traced,
                               &stats);
    lookahead_from_trace(stats.trace, &r);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int tiles = static_cast<int>(env_long("LUQR_TILES", 32));
  const int nb = static_cast<int>(env_long("LUQR_NB", 16));
  const int threads = static_cast<int>(env_long("LUQR_THREADS", 8));
  const double alpha = static_cast<double>(env_long("LUQR_ALPHA", 20));
  const int samples = static_cast<int>(env_long("LUQR_SAMPLES", 3));
  const int n = tiles * nb;

  std::printf("bench_scheduler: %dx%d tiles (N=%d, nb=%d), %d threads, "
              "max criterion alpha=%g, best of %d\n\n",
              tiles, tiles, n, nb, threads, alpha, samples);

  const auto dense = luqr::gen::generate(luqr::gen::MatrixKind::Random, n, 7);

  const ModeResult join = run_mode(dense, nb, threads, alpha, samples,
                                   luqr::rt::SubmitMode::JoinPerStep);
  const ModeResult cont = run_mode(dense, nb, threads, alpha, samples,
                                   luqr::rt::SubmitMode::Continuation);

  std::printf("%-16s %10s %12s %10s %10s %10s\n", "mode", "factor(s)",
              "tasks/sec", "tasks", "steals", "lookahead");
  std::printf("%-16s %10.4f %12.0f %10llu %10llu %5.1f/%d\n", "join-per-step",
              join.best_seconds, join.tasks_per_sec,
              static_cast<unsigned long long>(join.tasks),
              static_cast<unsigned long long>(join.steals), join.lookahead_avg,
              join.lookahead_max);
  std::printf("%-16s %10.4f %12.0f %10llu %10llu %5.1f/%d\n", "continuation",
              cont.best_seconds, cont.tasks_per_sec,
              static_cast<unsigned long long>(cont.tasks),
              static_cast<unsigned long long>(cont.steals), cont.lookahead_avg,
              cont.lookahead_max);
  std::printf("\ncontinuation speedup over join-per-step: %.3fx\n",
              join.best_seconds / cont.best_seconds);

  bench::JsonReport report("bench_scheduler", argc, argv);
  report.config("tiles", tiles);
  report.config("nb", nb);
  report.config("threads", threads);
  report.config("alpha", alpha);
  report.config("samples", samples);
  auto record = [&report](const char* mode, const ModeResult& r) {
    report.row(mode)
        .metric("factor_seconds", r.best_seconds)
        .metric("tasks_per_sec", r.tasks_per_sec)
        .metric("tasks", static_cast<long>(r.tasks))
        .metric("steals", static_cast<long>(r.steals))
        .metric("lookahead_avg", r.lookahead_avg)
        .metric("lookahead_max", r.lookahead_max);
  };
  record("join_per_step", join);
  record("continuation", cont);
  report.row("continuation_speedup")
      .metric("speedup", join.best_seconds / cont.best_seconds);
  report.write();
  return 0;
}
