// bench_scheduler — join-per-step vs continuation vs lookahead-priority
// scheduling on the task-parallel hybrid driver.
//
// Factors a LUQR_TILES x LUQR_TILES tile matrix (default 32x32, nb from
// LUQR_NB, default 16) with LUQR_THREADS workers (default 8) in both
// scheduler modes and reports factor time, tasks/second, steal counts, and
// the decision lookahead depth (how many steps behind the panel task the
// oldest still-running update is — measured from a traced run, so it is
// reported separately from the untraced timing runs).
//
//   LUQR_TILES    tile rows/cols of the square part    (default 32)
//   LUQR_NB       tile size                            (default 16)
//   LUQR_THREADS  worker threads                       (default 8)
//   LUQR_ALPHA    max-criterion threshold              (default 20)
//   LUQR_SAMPLES  timed runs per mode                  (default 3)
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace luqr;

struct ModeResult {
  double best_seconds = 0.0;
  double tasks_per_sec = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t critical_path = 0;
  std::uint64_t high_lane_tasks = 0;  // tasks executed from lanes > 0
  double lookahead_avg = 0.0;
  int lookahead_max = 0;
};

// Decision lookahead from a traced run: for each panel task of step k, the
// oldest step with a task still unfinished when the panel started.
void lookahead_from_trace(const std::vector<rt::TraceEvent>& events,
                          ModeResult* out) {
  double sum = 0.0;
  int count = 0;
  for (const auto& panel : events) {
    if (panel.name != "panel" || panel.tag <= 0) continue;
    int oldest = panel.tag;
    for (const auto& e : events)
      if (e.tag >= 0 && e.tag < oldest && e.end_us > panel.start_us)
        oldest = e.tag;
    const int depth = panel.tag - oldest;
    sum += depth;
    out->lookahead_max = std::max(out->lookahead_max, depth);
    ++count;
  }
  out->lookahead_avg = count > 0 ? sum / count : 0.0;
}

ModeResult run_mode(const Matrix<double>& dense, int nb, int threads,
                    double alpha, int samples, rt::SchedulerOptions sched) {
  ModeResult r;
  core::HybridOptions opt;
  opt.grid_p = 4;
  opt.grid_q = 4;

  r.best_seconds = 1e30;
  for (int s = 0; s < samples + 1; ++s) {  // first run is warmup
    TileMatrix<double> tiles = TileMatrix<double>::from_dense(dense, nb);
    MaxCriterion criterion(alpha);
    rt::SchedulerStats stats;
    Timer timer;
    rt::parallel_hybrid_factor(tiles, criterion, opt, threads, nullptr, sched,
                               &stats);
    const double t = timer.seconds();
    if (s == 0) continue;
    r.best_seconds = std::min(r.best_seconds, t);
    r.tasks = stats.tasks_executed;
    r.steals = stats.steals;
    r.critical_path = stats.critical_path;
    r.high_lane_tasks = 0;
    for (std::size_t l = 1; l < stats.lane_tasks.size(); ++l)
      r.high_lane_tasks += stats.lane_tasks[l];
  }
  r.tasks_per_sec = static_cast<double>(r.tasks) / r.best_seconds;

  // Separate traced run for the lookahead analysis (tracing adds per-task
  // overhead, so it never pollutes the timing above).
  {
    TileMatrix<double> tiles = TileMatrix<double>::from_dense(dense, nb);
    MaxCriterion criterion(alpha);
    rt::SchedulerOptions traced = sched;
    traced.trace = true;
    rt::SchedulerStats stats;
    rt::parallel_hybrid_factor(tiles, criterion, opt, threads, nullptr, traced,
                               &stats);
    lookahead_from_trace(stats.trace, &r);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int tiles = static_cast<int>(env_long("LUQR_TILES", 32));
  const int nb = static_cast<int>(env_long("LUQR_NB", 16));
  const int threads = static_cast<int>(env_long("LUQR_THREADS", 8));
  const double alpha = static_cast<double>(env_long("LUQR_ALPHA", 20));
  const int samples = static_cast<int>(env_long("LUQR_SAMPLES", 3));
  const int n = tiles * nb;

  std::printf("bench_scheduler: %dx%d tiles (N=%d, nb=%d), %d threads, "
              "max criterion alpha=%g, best of %d\n\n",
              tiles, tiles, n, nb, threads, alpha, samples);

  const auto dense = luqr::gen::generate(luqr::gen::MatrixKind::Random, n, 7);

  rt::SchedulerOptions join_opts;
  join_opts.mode = rt::SubmitMode::JoinPerStep;
  // Ablation baseline: continuation with the lookahead grading off (L = 0
  // keeps only the panel/gate lane split; the PR 2 policy — gates and the
  // k+1-column updates sharing one lane — is not expressible in the graded
  // mapping, so this compares against the nearest no-lookahead policy).
  rt::SchedulerOptions cont_opts;
  cont_opts.mode = rt::SubmitMode::Continuation;
  cont_opts.lookahead = 0;
  rt::SchedulerOptions look_opts;  // default: lookahead-graded priority lanes
  look_opts.mode = rt::SubmitMode::Continuation;

  const ModeResult join = run_mode(dense, nb, threads, alpha, samples, join_opts);
  const ModeResult cont = run_mode(dense, nb, threads, alpha, samples, cont_opts);
  const ModeResult look = run_mode(dense, nb, threads, alpha, samples, look_opts);

  auto print_mode = [](const char* name, const ModeResult& r) {
    std::printf("%-16s %10.4f %12.0f %10llu %10llu %8llu %8llu %5.1f/%d\n",
                name, r.best_seconds, r.tasks_per_sec,
                static_cast<unsigned long long>(r.tasks),
                static_cast<unsigned long long>(r.steals),
                static_cast<unsigned long long>(r.critical_path),
                static_cast<unsigned long long>(r.high_lane_tasks),
                r.lookahead_avg, r.lookahead_max);
  };
  std::printf("%-16s %10s %12s %10s %10s %8s %8s %10s\n", "mode", "factor(s)",
              "tasks/sec", "tasks", "steals", "critpath", "hi-lane",
              "lookahead");
  print_mode("join-per-step", join);
  print_mode("continuation", cont);
  print_mode("cont+lookahead", look);
  std::printf("\ncontinuation speedup over join-per-step: %.3fx\n",
              join.best_seconds / cont.best_seconds);
  std::printf("lookahead speedup over continuation:     %.3fx\n",
              cont.best_seconds / look.best_seconds);

  bench::JsonReport report("bench_scheduler", argc, argv);
  report.config("tiles", tiles);
  report.config("nb", nb);
  report.config("threads", threads);
  report.config("alpha", alpha);
  report.config("samples", samples);
  auto record = [&report](const char* mode, const ModeResult& r) {
    report.row(mode)
        .metric("factor_seconds", r.best_seconds)
        .metric("tasks_per_sec", r.tasks_per_sec)
        .metric("tasks", static_cast<long>(r.tasks))
        .metric("steals", static_cast<long>(r.steals))
        .metric("critical_path", static_cast<long>(r.critical_path))
        .metric("high_lane_tasks", static_cast<long>(r.high_lane_tasks))
        .metric("lookahead_avg", r.lookahead_avg)
        .metric("lookahead_max", r.lookahead_max);
  };
  record("join_per_step", join);
  record("continuation", cont);
  record("continuation_lookahead", look);
  report.row("continuation_speedup")
      .metric("speedup", join.best_seconds / cont.best_seconds);
  report.row("lookahead_speedup")
      .metric("speedup", cont.best_seconds / look.best_seconds);
  report.write();
  return 0;
}
