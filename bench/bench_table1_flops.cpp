// Table I reproduction: computational cost of each kernel, in units of
// nb^3 flops, for an LU step and a QR step — the analytic counts the
// algorithms are built on — plus measured wall-clock throughput of every
// real kernel on this host (the numbers that calibrate the simulator's
// efficiency table).
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "kernels/lapack.hpp"

namespace {

using namespace luqr;

// Time one kernel invocation (best of `reps`).
template <typename F>
double time_best(F&& fn, int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::kern;
  const int nb = static_cast<int>(env_long("LUQR_NB", 240));
  const double nb3 = static_cast<double>(nb) * nb * nb;

  std::printf("=== Table I: computational cost of each kernel (units of nb^3 flops) ===\n");
  std::printf("step k of an n x n tiled factorization; paper values in brackets\n\n");
  {
    TextTable t;
    t.header({"operation", "LU step (var A1)", "QR step"});
    t.row({"factor A", "2/3 GETRF      [2/3]", "4/3 GEQRT        [4/3]"});
    t.row({"eliminate B", "(n-1) TRSM     [1 each]", "2(n-1) TSQRT     [2 each]"});
    t.row({"apply C", "(n-1) SWPTRSM  [1 each]", "2(n-1) UNMQR     [2 each]"});
    t.row({"update D", "2(n-1)^2 GEMM  [2 each]", "4(n-1)^2 TSMQR   [4 each]"});
    t.row({"total ratio", "1x", "2x  (QR = twice LU)"});
    std::printf("%s\n", t.str().c_str());
  }

  std::printf("=== Measured kernel throughput on this host (nb = %d) ===\n", nb);
  Rng rng(1);
  auto rnd = [&](int m, int n) {
    Matrix<double> a(m, n);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) a(i, j) = rng.gaussian();
    return a;
  };
  auto rnd_upper = [&](int n) {
    Matrix<double> a(n, n);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i <= j; ++i) a(i, j) = rng.gaussian();
      a(j, j) += 4.0;
    }
    return a;
  };

  bench::JsonReport json("bench_table1_flops", argc, argv);
  json.config("nb", nb);
  TextTable t;
  t.header({"kernel", "flops (nb^3)", "time (ms)", "GFLOP/s"});
  auto report = [&](const char* name, double units, double seconds) {
    t.row({name, fmt_fixed(units, 3), fmt_fixed(seconds * 1e3, 2),
           fmt_fixed(units * nb3 / seconds / 1e9, 2)});
    json.row(name)
        .metric("flop_units_nb3", units)
        .metric("seconds", seconds)
        .metric("gflops", units * nb3 / seconds / 1e9);
  };

  {
    auto a = rnd(nb, nb), b = rnd(nb, nb), c = rnd(nb, nb);
    report("GEMM", 2.0, time_best([&] {
             gemm(Trans::No, Trans::No, -1.0, a.cview(), b.cview(), 1.0, c.view());
           }));
  }
  {
    auto u = rnd_upper(nb);
    auto b = rnd(nb, nb);
    report("TRSM", 1.0, time_best([&] {
             trsm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0,
                  u.cview(), b.view());
           }));
  }
  {
    report("GETRF", 2.0 / 3.0, time_best([&] {
             auto a = rnd(nb, nb);
             std::vector<int> piv;
             getrf(a.view(), piv);
           }));
  }
  {
    report("GEQRT", 4.0 / 3.0, time_best([&] {
             auto a = rnd(nb, nb);
             Matrix<double> tt(nb, nb);
             geqrt(a.view(), tt.view());
           }));
  }
  {
    auto a0 = rnd(nb, nb);
    Matrix<double> tt(nb, nb);
    auto v = a0;
    auto r = rnd_upper(nb);
    tsqrt(r.view(), v.view(), tt.view());
    auto c1 = rnd(nb, nb), c2 = rnd(nb, nb);
    report("TSQRT", 2.0, time_best([&] {
             auto rr = rnd_upper(nb);
             auto vv = a0;
             tsqrt(rr.view(), vv.view(), tt.view());
           }));
    report("TSMQR", 4.0, time_best([&] {
             tsmqr(Trans::Yes, v.cview(), tt.cview(), c1.view(), c2.view());
           }));
    report("UNMQR", 2.0, time_best([&] {
             auto vr = a0;
             Matrix<double> tq(nb, nb);
             geqrt(vr.view(), tq.view());
             unmqr(Trans::Yes, vr.cview(), tq.cview(), c1.view());
           }));
  }
  {
    auto r1 = rnd_upper(nb), r2 = rnd_upper(nb);
    Matrix<double> tt(nb, nb);
    ttqrt(r1.view(), r2.view(), tt.view());
    auto c1 = rnd(nb, nb), c2 = rnd(nb, nb);
    report("TTQRT", 1.0, time_best([&] {
             auto a1 = rnd_upper(nb), a2 = rnd_upper(nb);
             ttqrt(a1.view(), a2.view(), tt.view());
           }));
    report("TTMQR", 2.0, time_best([&] {
             ttmqr(Trans::Yes, r2.cview(), tt.cview(), c1.view(), c2.view());
           }));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("note: QR kernels sustain lower rates than GEMM/TRSM, matching the\n"
              "paper's premise that LU steps are both cheaper (flops) and faster\n"
              "(rate) than QR steps.\n");
  json.write();
  return 0;
}
