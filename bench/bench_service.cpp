// bench_service — serving-path performance of serve::SolveService.
//
// Reports (and emits via --json <path>, bench_common.hpp schema):
//   - cold request latency: factor + solve of a never-seen matrix
//   - cache-hit request latency: same matrix again (factor skipped)
//   - their ratio (the factor-once-solve-many win; CI asserts a floor)
//   - batched vs individual throughput for many small solves on one matrix
//   - a mixed multi-client stress summary (jobs/s, p50/p99)
//
// Scales via LUQR_N (matrix order, default 256), LUQR_NB (tile size,
// default 32) and LUQR_SAMPLES. n defaults large enough that the cold
// request is factorization-dominated — the regime the cache exists for.
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

using namespace luqr;

namespace {

serve::ServiceConfig service_config(int nb, int threads = 0) {
  serve::ServiceConfig cfg;
  cfg.solver = SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb);
  cfg.threads = threads;
  return cfg;
}

double solve_once_seconds(serve::SolveService& svc, const Matrix<double>& a,
                          const Matrix<double>& b) {
  Timer t;
  (void)svc.submit_solve(a, b).get();
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Config c = bench::config(/*default_n=*/256, /*default_nb=*/32);
  bench::JsonReport report("bench_service", argc, argv);
  report.config("n", c.n_max);
  report.config("nb", c.nb);
  report.config("samples", c.samples);

  const int n = c.n_max;
  std::printf("bench_service: n=%d nb=%d samples=%d\n\n", n, c.nb, c.samples);

  // -- cold vs cache-hit latency ------------------------------------------
  // Diagonally dominant systems: the all-LU regime, where a cache hit
  // replays through the exact-width wide panel (O(n^2) work) while a cold
  // request pays the O(n^3) factorization — the factor-once-solve-many
  // contrast the cache exists for.
  double cold = 1e30, warm = 1e30;
  {
    serve::SolveService svc(service_config(c.nb));
    const auto b = bench::rhs_for(n);
    // Cold: a never-seen matrix per sample (each pays factor + solve).
    for (int s = 0; s < c.samples; ++s) {
      const auto a = gen::generate(gen::MatrixKind::DiagDominant, n,
                                   5000 + static_cast<std::uint64_t>(s));
      cold = std::min(cold, solve_once_seconds(svc, a, b));
    }
    // Warm: one matrix, repeatedly (first request primes the cache).
    const auto a = gen::generate(gen::MatrixKind::DiagDominant, n, 4242);
    (void)svc.submit_solve(a, b).get();
    for (int s = 0; s < 5 * c.samples; ++s)
      warm = std::min(warm, solve_once_seconds(svc, a, b));
    const serve::ServiceStats st = svc.stats();
    if (st.cache.hits == 0) std::fprintf(stderr, "warning: no cache hits?!\n");
  }
  const double hit_speedup = cold / warm;
  std::printf("cold  factor+solve   %8.3f ms\n", 1e3 * cold);
  std::printf("warm  cache-hit      %8.3f ms   (%.1fx)\n", 1e3 * warm, hit_speedup);
  report.row("cold_request").metric("ms", 1e3 * cold).metric("n", n);
  report.row("cache_hit_request").metric("ms", 1e3 * warm).metric("n", n);
  report.row("cache_hit_speedup").metric("speedup", hit_speedup).metric("n", n);

  // -- batched vs individual small solves ---------------------------------
  {
    const int kSolves = 32;
    const int small_n = std::max(32, n / 4);
    serve::SolveService svc(service_config(c.nb));
    const auto a = gen::generate(gen::MatrixKind::Random, small_n, 777);
    std::vector<Matrix<double>> bs;
    for (int i = 0; i < kSolves; ++i)
      bs.push_back(bench::rhs_for(small_n, 900 + static_cast<std::uint64_t>(i)));
    (void)svc.submit_factor(a).get();  // prime the cache for both shapes

    const double individual = bench::best_of(c.samples, 1, [&] {
      std::vector<serve::JobHandle> handles;
      handles.reserve(bs.size());
      for (const auto& b : bs) handles.push_back(svc.submit_solve(a, b));
      for (auto& h : handles) (void)h.get();
    });
    const double batched = bench::best_of(c.samples, 1, [&] {
      auto handles = svc.submit_batch(a, bs);
      for (auto& h : handles) (void)h.get();
    });
    const double batch_speedup = individual / batched;
    std::printf("\n%d solves of n=%d   individual %8.3f ms | batched %8.3f ms "
                "(%.2fx)\n",
                kSolves, small_n, 1e3 * individual, 1e3 * batched, batch_speedup);
    report.row("individual_solves")
        .metric("ms", 1e3 * individual)
        .metric("count", kSolves)
        .metric("n", small_n);
    report.row("batched_solves")
        .metric("ms", 1e3 * batched)
        .metric("count", kSolves)
        .metric("n", small_n);
    report.row("batch_speedup").metric("speedup", batch_speedup).metric("n", small_n);
  }

  // -- mixed multi-client stress ------------------------------------------
  {
    const int kClients = 4, kRequests = 16, kPool = 4;
    serve::ServiceConfig cfg = service_config(c.nb);
    cfg.queue_capacity = 64;
    serve::SolveService svc(cfg);
    std::vector<Matrix<double>> pool;
    for (int i = 0; i < kPool; ++i)
      pool.push_back(gen::generate(gen::MatrixKind::Random, 32 + 32 * i,
                                   6000 + static_cast<std::uint64_t>(i)));
    Timer wall;
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRequests; ++r) {
          const auto& a = pool[static_cast<std::size_t>((t + r) % kPool)];
          (void)svc
              .submit_solve(a, bench::rhs_for(a.rows(),
                                              static_cast<std::uint64_t>(t) * 100 + r),
                            static_cast<serve::Priority>(r % 3))
              .get();
        }
      });
    }
    for (auto& t : threads) t.join();
    svc.drain();
    const double secs = wall.seconds();
    const serve::ServiceStats s = svc.stats();
    const double jobs_per_sec = static_cast<double>(kClients * kRequests) / secs;
    std::printf("\nstress %dx%d        %8.1f jobs/s | p50=%lluus p99=%lluus | "
                "cache hit %.0f%% | workspace %.1f KB\n",
                kClients, kRequests, jobs_per_sec,
                static_cast<unsigned long long>(s.latency_p50_us),
                static_cast<unsigned long long>(s.latency_p99_us),
                100.0 * s.cache.hit_rate(),
                static_cast<double>(s.workspace_bytes) / 1024.0);
    report.row("stress_mixed")
        .metric("jobs_per_sec", jobs_per_sec)
        .metric("p50_us", static_cast<long>(s.latency_p50_us))
        .metric("p99_us", static_cast<long>(s.latency_p99_us))
        .metric("cache_hit_rate", s.cache.hit_rate())
        .metric("workspace_bytes", static_cast<long>(s.workspace_bytes));
  }

  report.write();
  return 0;
}
