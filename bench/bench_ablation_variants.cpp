// Ablation: LU step variants A1 / A2 / B1 / B2 (paper §II-C).
//
// The paper implements only A1 and argues the others are "very similar";
// this bench quantifies the comparison: identical Schur-complement
// mathematics, so stability tracks A1, while the factor/apply stages differ
// in cost (A2/B2 pay a 2x factor+apply; B variants skip the Apply stage and
// the A_kk broadcast). Real numerics for stability + wall-clock; analytic
// per-step flop accounting for the stage costs.
#include "bench_common.hpp"
#include "common/timer.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  const auto c = config(/*n=*/512, /*nb=*/32, /*samples=*/2);
  bench::JsonReport json("bench_ablation_variants", argc, argv);
  json.config("n", c.n_max);
  json.config("nb", c.nb);

  std::printf("=== LU-variant ablation (N = %d, nb = %d, alpha = 50, Max) ===\n\n",
              c.n_max, c.nb);

  TextTable t;
  t.header({"variant", "HPL3 (random)", "HPL3 (wilkinson)", "% LU (random)",
            "time (s, random)"});

  const auto a_rand = gen::generate(gen::MatrixKind::Random, c.n_max, 1);
  const auto a_wilk = gen::generate(gen::MatrixKind::Wilkinson, c.n_max, 0);
  const auto b = rhs_for(c.n_max);

  for (auto variant : {core::LuVariant::A1, core::LuVariant::A2,
                       core::LuVariant::B1, core::LuVariant::B2}) {
    const char* name = variant == core::LuVariant::A1   ? "A1 (paper)"
                       : variant == core::LuVariant::A2 ? "A2 (QR factor)"
                       : variant == core::LuVariant::B1 ? "B1 (block LU)"
                                                        : "B2 (block QR)";
    const SolverConfig base = SolverConfig()
                                  .variant(variant)
                                  .exact_inv_norm(true)
                                  .tile_size(c.nb)
                                  .backend(Backend::Serial);

    Timer timer;
    const auto r_rand =
        Solver(SolverConfig(base).criterion(CriterionSpec::max(50.0)))
            .solve(a_rand, b);
    const double secs = timer.seconds();
    const auto r_wilk =
        Solver(SolverConfig(base).criterion(CriterionSpec::max(0.5)))
            .solve(a_wilk, b);

    t.row({name, fmt_sci(verify::hpl3(a_rand, r_rand.x, b), 2),
           fmt_sci(verify::hpl3(a_wilk, r_wilk.x, b), 2),
           fmt_fixed(100.0 * r_rand.stats.lu_fraction(), 1),
           fmt_fixed(secs, 3)});
    json.row(name)
        .metric("hpl3_random", verify::hpl3(a_rand, r_rand.x, b))
        .metric("hpl3_wilkinson", verify::hpl3(a_wilk, r_wilk.x, b))
        .metric("lu_fraction", r_rand.stats.lu_fraction())
        .metric("seconds", secs);
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("=== Analytic per-step stage costs (units of nb^3, panel of n tiles) ===\n");
  TextTable f;
  f.header({"variant", "factor", "apply", "eliminate", "update", "row k updated?"});
  f.row({"A1", "2/3 (GETRF)", "(n-1) SWPTRSM", "(n-1) TRSM", "2(n-1)^2 GEMM", "yes"});
  f.row({"A2", "4/3 (GEQRT)", "2(n-1) ORMQR", "(n-1) TRSM", "2(n-1)^2 GEMM", "yes"});
  f.row({"B1", "2/3 (GETRF)", "none", "2(n-1) (two TRSM)", "2(n-1)^2 GEMM", "no"});
  f.row({"B2", "4/3 (GEQRT)", "none", "3(n-1) (TRSM+ORMQR)", "2(n-1)^2 GEMM", "no"});
  std::printf("%s\n", f.str().c_str());
  std::printf("reading: every variant is Schur-update dominated (the 2(n-1)^2\n"
              "GEMMs), so performance differences are second order — the paper's\n"
              "rationale for studying A1 only. B variants trade the Apply stage\n"
              "for a block-triangular solve at the end.\n");
  json.write();
  return 0;
}
