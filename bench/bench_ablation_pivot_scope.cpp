// Ablation: pivot search scope (paper §V-B's diagonal-domain discussion).
//
// At alpha = infinity the hybrid always takes LU steps, and the only
// difference between LU NoPiv, the paper's variant, and LUPP is where
// pivots may come from: the diagonal tile, the diagonal domain, or the
// whole panel. The paper observes that domain pivoting makes alpha = inf
// almost as stable as LUPP on random matrices (relative HPL3 -> 1 as N
// grows), while tile pivoting is clearly unstable. Real numerics.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  const auto c = config(/*n=*/768, /*nb=*/32, /*samples=*/3);
  bench::JsonReport json("bench_ablation_pivot_scope", argc, argv);
  json.config("nb", c.nb);
  json.config("samples", c.samples);

  std::printf("=== Pivot-scope ablation: relative HPL3 (ratio to LUPP), alpha = inf ===\n");
  std::printf("nb = %d, grid 4x1 (domains = every 4th tile row), %d samples\n\n",
              c.nb, c.samples);

  std::vector<int> sizes;
  for (int n = c.n_max / 3; n <= c.n_max; n += c.n_max / 3) sizes.push_back(n);

  TextTable t;
  {
    std::vector<std::string> header = {"pivot scope \\ N"};
    for (int n : sizes) header.push_back(std::to_string(n));
    t.header(header);
  }
  for (auto scope : {core::PivotScope::Tile, core::PivotScope::Domain,
                     core::PivotScope::Panel}) {
    const char* name = scope == core::PivotScope::Tile     ? "tile (NoPiv)"
                       : scope == core::PivotScope::Domain ? "domain (paper)"
                                                           : "panel (LUPP)";
    std::vector<std::string> row = {name};
    for (int n : sizes) {
      const double lupp = lupp_hpl3_random(n, c.nb, c.samples);
      double h = 0.0;
      for (int s = 0; s < c.samples; ++s) {
        const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
        const auto b = rhs_for(n, 100 + s);
        const Solver solver(SolverConfig()
                                .criterion(CriterionSpec::always_lu())
                                .pivot_scope(scope)
                                .grid(4, 1)
                                .tile_size(c.nb)
                                .backend(Backend::Serial));
        const auto r = solver.solve(a, b);
        h += verify::hpl3(a, r.x, b) / c.samples;
      }
      row.push_back(fmt_ratio(h / lupp));
      json.row(name).metric("n", n).metric("hpl3_ratio_to_lupp", h / lupp);
    }
    t.row(row);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expected shape (paper): tile >> 1 and growing; domain close to 1\n"
              "(and approaching it as N grows); panel == 1 by construction.\n");
  json.write();
  return 0;
}
