// bench_batch — batched small-problem throughput (luqr::batch + submit_many).
//
// The headline comparison is the steady-state serving regime batching is
// built for: a warm pool of 32 distinct n=64 systems (factorization cache
// primed), 256 solve jobs cycling over the pool, pushed through
// serve::SolveService as (a) 256 individual submit_solve calls and (b) one
// zero-copy submit_many call over shared_ptr handles. Per job, individual
// submission pays hash + cache probe + a solo solve + a dispatcher
// round-trip; submit_many keys each distinct matrix once (pointer dedup),
// skims the hits past staging, and fuses same-factorization members into
// wide multi-column solves — structure the per-job API cannot express.
// CI asserts submit_many_speedup >= 3x on this row.
//
// Also reported (informational): the same comparison cold (256 distinct
// systems, fresh service per sample — factorization compute dominates both
// sides, so the ratio is near 1 by construction), the library endpoints
// factor_many / solve_many / factor_solve_many against one-shot Solver
// loops, and a mixed-size sweep across the staging buckets.
//
// Scales via LUQR_N (order, default 64), LUQR_NB (tile, default 64 — a
// single-tile factor at the default order) and LUQR_SAMPLES.
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

using namespace luqr;

namespace {

constexpr int kCount = 256;
constexpr int kPool = 32;

SolverConfig solver_config(int nb) {
  return SolverConfig().criterion(CriterionSpec::max(100.0)).tile_size(nb);
}

std::vector<Matrix<double>> systems(int count, int n, std::uint64_t seed0) {
  std::vector<Matrix<double>> as;
  as.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    as.push_back(gen::generate(gen::MatrixKind::Random, n,
                               seed0 + static_cast<std::uint64_t>(i)));
  return as;
}

std::vector<Matrix<double>> rhss(const std::vector<Matrix<double>>& as,
                                 std::uint64_t seed0) {
  std::vector<Matrix<double>> bs;
  bs.reserve(as.size());
  for (std::size_t i = 0; i < as.size(); ++i)
    bs.push_back(bench::rhs_for(as[i].rows(), seed0 + i));
  return bs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Config c = bench::config(/*default_n=*/64, /*default_nb=*/64);
  bench::JsonReport report("bench_batch", argc, argv);
  report.config("n", c.n_max);
  report.config("nb", c.nb);
  report.config("samples", c.samples);
  report.config("count", kCount);
  report.config("pool", kPool);

  const int n = c.n_max;
  std::printf("bench_batch: %d jobs, n=%d nb=%d samples=%d\n\n", kCount, n,
              c.nb, c.samples);

  serve::ServiceConfig cfg;
  cfg.solver = solver_config(c.nb);

  // -- headline: warm pool, submit_many vs per-job submission -------------
  // One long-lived service per mode; the pool's factorizations are primed
  // into the cache before timing. Every sample then re-solves kCount jobs
  // cycling over the pool with fresh right-hand sides.
  {
    std::vector<std::shared_ptr<const Matrix<double>>> pool;
    for (int i = 0; i < kPool; ++i)
      pool.push_back(std::make_shared<const Matrix<double>>(gen::generate(
          gen::MatrixKind::Random, n, 3000 + static_cast<std::uint64_t>(i))));
    std::vector<std::shared_ptr<const Matrix<double>>> as;
    std::vector<Matrix<double>> bs;
    for (int i = 0; i < kCount; ++i) {
      as.push_back(pool[static_cast<std::size_t>(i) % kPool]);
      bs.push_back(bench::rhs_for(n, 8000 + static_cast<std::uint64_t>(i)));
    }

    const auto prime = [&](serve::SolveService& svc) {
      std::vector<serve::JobHandle> handles;
      for (const auto& a : pool)
        handles.push_back(svc.submit_solve(*a, bench::rhs_for(n, 1)));
      for (auto& h : handles) (void)h.get();
    };

    serve::SolveService svc_ind(cfg);
    prime(svc_ind);
    const double individual = bench::best_of(c.samples, 1, [&] {
      std::vector<serve::JobHandle> handles;
      handles.reserve(as.size());
      for (std::size_t i = 0; i < as.size(); ++i)
        handles.push_back(svc_ind.submit_solve(*as[i], bs[i]));
      for (auto& h : handles) (void)h.get();
    });

    serve::SolveService svc_many(cfg);
    prime(svc_many);
    const double many = bench::best_of(c.samples, 1, [&] {
      auto handles = svc_many.submit_many(as, bs);
      for (auto& h : handles) (void)h.get();
    });

    const double jobs_individual = kCount / individual;
    const double jobs_many = kCount / many;
    const double speedup = individual / many;
    std::printf("warm pool (%d distinct, cache primed):\n", kPool);
    std::printf("individual submit    %8.3f ms  (%8.0f jobs/s)\n",
                1e3 * individual, jobs_individual);
    std::printf("submit_many          %8.3f ms  (%8.0f jobs/s)  %.2fx\n",
                1e3 * many, jobs_many, speedup);
    report.row("individual_submit")
        .metric("ms", 1e3 * individual)
        .metric("jobs_per_sec", jobs_individual)
        .metric("n", n)
        .metric("count", kCount);
    report.row("submit_many")
        .metric("ms", 1e3 * many)
        .metric("jobs_per_sec", jobs_many)
        .metric("n", n)
        .metric("count", kCount);
    report.row("submit_many_speedup").metric("speedup", speedup).metric("n", n);
  }

  const auto as = systems(kCount, n, 3000);
  const auto bs = rhss(as, 8000);

  // -- cold, all-distinct (informational) ---------------------------------
  // Fresh service per sample: every factorization is a cache miss in both
  // modes. Factor compute dominates, so the ratio only shows scheduling
  // amortization at the margin.
  {
    const double individual = bench::best_of(c.samples, 1, [&] {
      serve::SolveService svc(cfg);
      std::vector<serve::JobHandle> handles;
      handles.reserve(as.size());
      for (std::size_t i = 0; i < as.size(); ++i)
        handles.push_back(svc.submit_solve(as[i], bs[i]));
      for (auto& h : handles) (void)h.get();
    });
    const double many = bench::best_of(c.samples, 1, [&] {
      serve::SolveService svc(cfg);
      auto handles = svc.submit_many(as, bs);
      for (auto& h : handles) (void)h.get();
    });
    std::printf("\ncold, %d distinct systems:\n", kCount);
    std::printf("individual submit    %8.3f ms  (%8.0f jobs/s)\n",
                1e3 * individual, kCount / individual);
    std::printf("submit_many          %8.3f ms  (%8.0f jobs/s)  %.2fx\n",
                1e3 * many, kCount / many, individual / many);
    report.row("cold_individual_submit")
        .metric("ms", 1e3 * individual)
        .metric("jobs_per_sec", kCount / individual)
        .metric("n", n);
    report.row("cold_submit_many")
        .metric("ms", 1e3 * many)
        .metric("jobs_per_sec", kCount / many)
        .metric("speedup", individual / many)
        .metric("n", n);
  }

  // -- library endpoints vs one-shot Solver loops -------------------------
  {
    const Solver solver(solver_config(c.nb));
    const double loop_factor = bench::best_of(c.samples, 1, [&] {
      for (const auto& a : as) (void)solver.factor(a);
    });
    const double many_factor = bench::best_of(c.samples, 1, [&] {
      (void)batch::factor_many(solver, as);
    });
    std::printf("\nfactor loop          %8.3f ms\n", 1e3 * loop_factor);
    std::printf("factor_many          %8.3f ms  (%.2fx)\n", 1e3 * many_factor,
                loop_factor / many_factor);
    report.row("factor_loop").metric("ms", 1e3 * loop_factor).metric("n", n);
    report.row("factor_many")
        .metric("ms", 1e3 * many_factor)
        .metric("speedup", loop_factor / many_factor)
        .metric("n", n);

    const auto factored = batch::factor_many(solver, as);
    std::vector<batch::FactorizationPtr> facs;
    facs.reserve(factored.size());
    for (const auto& o : factored) facs.push_back(o.factorization);
    const double loop_solve = bench::best_of(c.samples, 1, [&] {
      for (std::size_t i = 0; i < facs.size(); ++i) (void)facs[i]->solve(bs[i]);
    });
    const double many_solve = bench::best_of(c.samples, 1, [&] {
      (void)batch::solve_many(solver, facs, bs);
    });
    std::printf("solve loop           %8.3f ms\n", 1e3 * loop_solve);
    std::printf("solve_many           %8.3f ms  (%.2fx)\n", 1e3 * many_solve,
                loop_solve / many_solve);
    report.row("solve_loop").metric("ms", 1e3 * loop_solve).metric("n", n);
    report.row("solve_many")
        .metric("ms", 1e3 * many_solve)
        .metric("speedup", loop_solve / many_solve)
        .metric("n", n);

    const double loop_both = bench::best_of(c.samples, 1, [&] {
      for (std::size_t i = 0; i < as.size(); ++i) (void)solver.solve(as[i], bs[i]);
    });
    const double many_both = bench::best_of(c.samples, 1, [&] {
      (void)batch::factor_solve_many(solver, as, bs);
    });
    std::printf("factor+solve loop    %8.3f ms\n", 1e3 * loop_both);
    std::printf("factor_solve_many    %8.3f ms  (%.2fx)\n", 1e3 * many_both,
                loop_both / many_both);
    report.row("factor_solve_loop").metric("ms", 1e3 * loop_both).metric("n", n);
    report.row("factor_solve_many")
        .metric("ms", 1e3 * many_both)
        .metric("speedup", loop_both / many_both)
        .metric("n", n);
  }

  // -- mixed sizes across staging buckets ---------------------------------
  {
    std::vector<Matrix<double>> mixed;
    for (int i = 0; i < 96; ++i) {
      const int sizes[] = {16, 32, 48, 64, 96, 128};
      mixed.push_back(gen::generate(gen::MatrixKind::Random, sizes[i % 6],
                                    7000 + static_cast<std::uint64_t>(i)));
    }
    const auto mixed_bs = rhss(mixed, 9500);
    const double mixed_many = bench::best_of(c.samples, 1, [&] {
      serve::SolveService svc(cfg);
      auto handles = svc.submit_many(mixed, mixed_bs);
      for (auto& h : handles) (void)h.get();
    });
    const double mixed_jobs = static_cast<double>(mixed.size()) / mixed_many;
    std::printf("\nmixed 16..128 x%zu   %8.3f ms  (%8.0f jobs/s)\n", mixed.size(),
                1e3 * mixed_many, mixed_jobs);
    report.row("submit_many_mixed")
        .metric("ms", 1e3 * mixed_many)
        .metric("jobs_per_sec", mixed_jobs)
        .metric("count", static_cast<int>(mixed.size()));
  }

  report.write();
  return 0;
}
