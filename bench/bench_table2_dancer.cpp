// Table II reproduction: performance of every algorithm for N = 20,000 on
// the (simulated) Dancer platform, 4x4 grid — time, %LU steps, fake/true
// GFLOP/s and fake/true %peak.
//
// The LUQR rows sweep the same %LU operating points the paper reports for
// the Max criterion (100, 94.1, 83.3, 61.9, 51.2, 35.7, 11.9, 0 percent);
// the alpha values producing those fractions are machine- and scale-
// dependent (the paper itself could not auto-tune them), so the operating
// point is the faithful coordinate. A second table reports the alpha ->
// %LU mapping measured with *real numerics* at laptop scale.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  using namespace luqr::sim;

  const int nb = 240;
  const int n = static_cast<int>(env_long("LUQR_SIM_NT", 84));  // N = 20,160
  const Platform pl = Platform::dancer();
  DagConfig cfg;
  cfg.n = n;
  cfg.nb = nb;

  std::printf("=== Table II (simulated Dancer, %dx%d grid, N = %d, nb = %d) ===\n\n",
              pl.p, pl.q, n * nb, nb);

  TextTable t;
  t.header({"Algorithm", "alpha", "Time", "% LU", "Fake GF/s", "True GF/s",
            "Fake %Pk", "True %Pk"});
  bench::JsonReport json("bench_table2_dancer", argc, argv);
  json.config("nb", nb);
  json.config("sim_nt", n);
  auto add_row = [&](const std::string& name, const std::string& alpha,
                     const AlgoReport& r) {
    t.row({name, alpha, fmt_fixed(r.seconds, 2), fmt_fixed(100.0 * r.lu_fraction, 1),
           fmt_fixed(r.gflops_fake, 1), fmt_fixed(r.gflops_true, 1),
           fmt_fixed(r.pct_peak_fake, 1), fmt_fixed(r.pct_peak_true, 1)});
    auto& row = json.row(alpha.empty() ? name : name + " a=" + alpha);
    row.metric("sim_seconds", r.seconds)
        .metric("lu_fraction", r.lu_fraction)
        .metric("gflops_fake", r.gflops_fake)
        .metric("gflops_true", r.gflops_true);
  };

  add_row("LU NoPiv", "", simulate_algorithm(Algo::LuNoPiv, cfg, pl));
  add_row("LU IncPiv", "", simulate_algorithm(Algo::LuIncPiv, cfg, pl));
  // The paper's Max-criterion operating points (column 4 of Table II).
  const std::pair<const char*, double> points[] = {
      {"inf", 1.0},   {"13000", 0.941}, {"9000", 0.833}, {"6000", 0.619},
      {"4000", 0.512}, {"1400", 0.357}, {"900", 0.119},  {"0", 0.0}};
  for (const auto& [alpha, frac] : points) {
    const auto rep =
        simulate_algorithm(Algo::LuQr, cfg, pl, spread_lu_steps(n, frac));
    add_row("LUQR (MAX)", alpha, rep);
  }
  add_row("HQR", "", simulate_algorithm(Algo::Hqr, cfg, pl));
  add_row("LUPP", "", simulate_algorithm(Algo::Lupp, cfg, pl));
  std::printf("%s\n", t.str().c_str());

  {
    const auto hqr = simulate_algorithm(Algo::Hqr, cfg, pl);
    const auto luqr0 = simulate_algorithm(Algo::LuQr, cfg, pl, spread_lu_steps(n, 0.0));
    std::printf("decision-process overhead (LUQR alpha=0 vs HQR): %.1f%%  (paper: ~12.7%%)\n\n",
                100.0 * (luqr0.seconds / hqr.seconds - 1.0));
  }

  // Real-numerics alpha -> %LU mapping at laptop scale (Max criterion).
  const auto c = config(/*n=*/768, /*nb=*/48, /*samples=*/2);
  std::printf("=== Measured alpha -> %%LU (Max criterion, real numerics, N = %d, nb = %d) ===\n",
              c.n_max, c.nb);
  TextTable m;
  m.header({"alpha", "% LU steps", "mean HPL3"});
  const double inf = std::numeric_limits<double>::infinity();
  for (double alpha : {inf, 500.0, 200.0, 100.0, 50.0, 20.0, 5.0, 0.0}) {
    core::HybridOptions opt;
    opt.grid_p = 4;
    opt.grid_q = 4;
    const auto out = run_hybrid_random("max", alpha, c.n_max, c.nb, c.samples, opt);
    char tag[32];
    if (std::isinf(alpha)) {
      std::snprintf(tag, sizeof(tag), "inf");
    } else {
      std::snprintf(tag, sizeof(tag), "%g", alpha);
    }
    m.row({tag, fmt_fixed(100.0 * out.mean_lu_fraction, 1), fmt_sci(out.mean_hpl3, 2)});
    json.row(std::string("measured_max_a=") + tag)
        .metric("lu_fraction", out.mean_lu_fraction)
        .metric("hpl3", out.mean_hpl3);
  }
  std::printf("%s", m.str().c_str());
  json.write();
  return 0;
}
