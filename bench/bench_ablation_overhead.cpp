// Ablation: the decision-process overhead (paper §V-B: ~10-12.7% at
// alpha = 0, dominated by backup/restore on the critical path).
//
// Simulated: LUQR at 0% LU vs pure HQR across sizes, plus a variant with
// the Backup/Restore tasks made free to isolate their share.
// Real numerics: wall-clock of the hybrid driver at alpha = 0 vs the pure
// HQR driver at laptop scale (same kernels; the difference is the panel
// factorization + backup/restore work).
#include "bench_common.hpp"
#include "common/timer.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  using namespace luqr::sim;

  bench::JsonReport json("bench_ablation_overhead", argc, argv);
  const Platform pl = Platform::dancer();
  std::printf("=== Decision-process overhead (simulated Dancer) ===\n\n");
  TextTable t;
  t.header({"tiles n", "HQR time", "LUQR a=0 time", "overhead %",
            "LUQR a=inf time", "NoPiv time", "overhead %"});
  for (int n : {21, 42, 84}) {
    DagConfig cfg;
    cfg.n = n;
    cfg.nb = 240;
    const auto hqr = simulate_algorithm(Algo::Hqr, cfg, pl);
    const auto luqr0 =
        simulate_algorithm(Algo::LuQr, cfg, pl, spread_lu_steps(n, 0.0));
    const auto luqr1 =
        simulate_algorithm(Algo::LuQr, cfg, pl, spread_lu_steps(n, 1.0));
    const auto nopiv = simulate_algorithm(Algo::LuNoPiv, cfg, pl);
    t.row({std::to_string(n), fmt_fixed(hqr.seconds, 2),
           fmt_fixed(luqr0.seconds, 2),
           fmt_fixed(100.0 * (luqr0.seconds / hqr.seconds - 1.0), 1),
           fmt_fixed(luqr1.seconds, 2), fmt_fixed(nopiv.seconds, 2),
           fmt_fixed(100.0 * (luqr1.seconds / nopiv.seconds - 1.0), 1)});
    json.row("sim_overhead")
        .metric("tiles", n)
        .metric("overhead_alpha0_pct", 100.0 * (luqr0.seconds / hqr.seconds - 1.0))
        .metric("overhead_alphainf_pct",
                100.0 * (luqr1.seconds / nopiv.seconds - 1.0));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper: ~10%% overhead at alpha=0 (backup/restore on the critical\n"
              "path); LUQR(alpha=inf) vs NoPiv shows the cost of the panel stage\n"
              "plus criterion when LU is always taken.\n\n");

  // Real-numerics overhead at laptop scale.
  const auto c = config(/*n=*/512, /*nb=*/32, /*samples=*/2);
  std::printf("=== Real-numerics overhead (N = %d, nb = %d, sequential) ===\n",
              c.n_max, c.nb);
  double t_hqr = 0.0, t_luqr0 = 0.0;
  for (int s = 0; s < c.samples; ++s) {
    const auto a = gen::generate(gen::MatrixKind::Random, c.n_max, 5000 + s);
    const auto b = rhs_for(c.n_max);
    {
      Timer timer;
      (void)baselines::hqr_solve(a, b, c.nb);
      t_hqr += timer.seconds();
    }
    {
      const Solver solver(SolverConfig()
                              .criterion(CriterionSpec::always_qr())
                              .tile_size(c.nb)
                              .backend(Backend::Serial));
      Timer timer;
      (void)solver.solve(a, b);
      t_luqr0 += timer.seconds();
    }
  }
  std::printf("HQR: %.3fs   LUQR(alpha=0): %.3fs   overhead: %.1f%%\n",
              t_hqr / c.samples, t_luqr0 / c.samples,
              100.0 * (t_luqr0 / t_hqr - 1.0));
  json.row("real_overhead")
      .metric("n", c.n_max)
      .metric("nb", c.nb)
      .metric("hqr_seconds", t_hqr / c.samples)
      .metric("luqr_alpha0_seconds", t_luqr0 / c.samples)
      .metric("overhead_pct", 100.0 * (t_luqr0 / t_hqr - 1.0));
  json.write();
  return 0;
}
