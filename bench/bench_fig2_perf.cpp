// Figure 2, column 2 reproduction: normalized GFLOP/s (2/3 N^3 / time)
// versus matrix size for every algorithm, on the simulated Dancer platform
// (4x4 grid) — plus the LUQR curves at the LU fractions measured from real
// numerics per alpha.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  using namespace luqr::sim;

  const Platform pl = Platform::dancer();
  const int nb = 240;
  std::vector<int> tile_counts = {10, 21, 42, 63, 84};  // N up to ~20k

  // LU fractions per alpha from a real-numerics run at laptop scale (the
  // fraction is the transferable coordinate; see DESIGN.md).
  const auto c = config(/*n=*/576, /*nb=*/48, /*samples=*/2);
  const double inf = std::numeric_limits<double>::infinity();
  core::HybridOptions opt4;
  opt4.grid_p = 4;
  opt4.grid_q = 4;
  const std::vector<std::pair<std::string, double>> alphas = {
      {"inf", inf}, {"200", 200.0}, {"50", 50.0}, {"5", 5.0}, {"0", 0.0}};
  std::vector<double> fractions;
  for (const auto& [tag, alpha] : alphas) {
    fractions.push_back(
        run_hybrid_random("max", alpha, c.n_max, c.nb, c.samples, opt4)
            .mean_lu_fraction);
  }

  std::printf("=== Figure 2, col 2: normalized GFLOP/s vs N (simulated 4x4 Dancer) ===\n");
  std::printf("normalization: 2/3 N^3 / time (QR-heavy runs cap near half rate)\n\n");

  TextTable t;
  {
    std::vector<std::string> header = {"algorithm \\ N"};
    for (int n : tile_counts) header.push_back(std::to_string(n * nb));
    t.header(header);
  }
  bench::JsonReport json("bench_fig2_perf", argc, argv);
  json.config("nb", nb);
  json.config("samples", c.samples);
  auto sweep = [&](const std::string& name, auto&& make_report) {
    std::vector<std::string> row = {name};
    for (int n : tile_counts) {
      DagConfig cfg;
      cfg.n = n;
      cfg.nb = nb;
      const double gf = make_report(cfg).gflops_fake;
      row.push_back(fmt_fixed(gf, 1));
      json.row(name).metric("n", n * nb).metric("gflops_fake", gf);
    }
    t.row(row);
  };

  sweep("LU NoPiv", [&](const DagConfig& cfg) {
    return simulate_algorithm(Algo::LuNoPiv, cfg, pl);
  });
  sweep("LU IncPiv", [&](const DagConfig& cfg) {
    return simulate_algorithm(Algo::LuIncPiv, cfg, pl);
  });
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double f = fractions[i];
    sweep("LUQR max a=" + alphas[i].first + " (" +
              fmt_fixed(100.0 * f, 0) + "% LU)",
          [&, f](const DagConfig& cfg) {
            return simulate_algorithm(Algo::LuQr, cfg, pl,
                                      spread_lu_steps(cfg.n, f));
          });
  }
  sweep("HQR", [&](const DagConfig& cfg) {
    return simulate_algorithm(Algo::Hqr, cfg, pl);
  });
  sweep("LUPP", [&](const DagConfig& cfg) {
    return simulate_algorithm(Algo::Lupp, cfg, pl);
  });
  std::printf("%s\n", t.str().c_str());
  std::printf("expected shape (paper): LU NoPiv on top; LUQR decreases smoothly as\n"
              "alpha (and the LU fraction) shrinks; HQR ~ half of NoPiv; LUPP lowest.\n");
  json.write();
  return 0;
}
