// Ablation: QR-step reduction-tree choice (paper §IV picks GREEDY inside
// nodes and FIBONACCI across nodes). Reports logical rounds, a weighted
// pipeline makespan for one panel, and the simulated full-factorization
// time of pure HQR under each tree pair on the Dancer platform.
#include "bench_common.hpp"
#include "hqr/elimination.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  using namespace luqr::sim;

  const int n = static_cast<int>(env_long("LUQR_SIM_NT", 48));
  bench::JsonReport json("bench_ablation_trees", argc, argv);
  json.config("sim_nt", n);
  const Platform pl = Platform::dancer();

  std::printf("=== Ablation: HQR reduction trees (panel of %d tiles, 4-row grid) ===\n\n", n);

  const auto domains = ProcessGrid(pl.p, 1).panel_domains(0, n);
  const double ts_cost = 2.0, tt_cost = 1.0;  // Table I flop ratios

  TextTable t;
  t.header({"local tree", "dist tree", "rounds", "panel makespan",
            "sim HQR time (s)", "sim HQR GF/s"});
  for (auto local : {hqr::LocalTree::FlatTS, hqr::LocalTree::FlatTT,
                     hqr::LocalTree::Binary, hqr::LocalTree::Greedy,
                     hqr::LocalTree::Fibonacci}) {
    for (auto dist : {hqr::DistTree::Flat, hqr::DistTree::Binary,
                      hqr::DistTree::Greedy, hqr::DistTree::Fibonacci}) {
      const hqr::TreeConfig tree{local, dist};
      const auto list = hqr::elimination_list(domains, tree);
      DagConfig cfg;
      cfg.n = n;
      cfg.nb = 240;
      cfg.tree = tree;
      const auto rep = simulate_algorithm(Algo::Hqr, cfg, pl);
      t.row({hqr::to_string(local), hqr::to_string(dist),
             std::to_string(hqr::round_count(list)),
             fmt_fixed(hqr::pipeline_makespan(list, ts_cost, tt_cost), 1),
             fmt_fixed(rep.seconds, 2), fmt_fixed(rep.gflops_fake, 1)});
      json.row(std::string(hqr::to_string(local)) + "+" + hqr::to_string(dist))
          .metric("rounds", static_cast<long>(hqr::round_count(list)))
          .metric("panel_makespan", hqr::pipeline_makespan(list, ts_cost, tt_cost))
          .metric("sim_seconds", rep.seconds)
          .metric("sim_gflops", rep.gflops_fake);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("expected shape: flat chains have linear depth; greedy/binary are\n"
              "logarithmic; the paper's greedy+fibonacci pair is at or near the\n"
              "best simulated time.\n");
  json.write();
  return 0;
}
