// Shared helpers for the benchmark harness.
//
// Every bench binary runs standalone with laptop-scale defaults and scales
// via environment variables:
//   LUQR_N        largest real-numerics problem size (default per bench)
//   LUQR_NB       tile size for real-numerics runs (default 48)
//   LUQR_SAMPLES  matrices per ensemble average (default 3)
//
// Every bench also accepts `--json <path>`: alongside the human-readable
// tables it then writes one machine-readable JSON document (bench name,
// config, result rows) so the perf trajectory can be tracked across commits
// (BENCH_*.json at the repo root, and the CI perf-smoke artifact).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "luqr.hpp"

namespace luqr::bench {

/// Short git SHA of the working tree, so BENCH_*.json artifacts can be
/// matched to the commit they measured. `LUQR_GIT_SHA` overrides (CI sets it
/// from the checkout ref; detached build dirs may have no .git to ask).
inline std::string git_sha() {
  if (const char* env = std::getenv("LUQR_GIT_SHA")) return env;
  std::string sha;
#if !defined(_WIN32)
  if (std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
#endif
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

/// Current UTC time as ISO-8601 (e.g. "2026-08-08T12:34:56Z").
inline std::string iso_timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Compiler id + version string baked into the binary.
inline std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Coarse build-flag fingerprint: assertion mode + optimization level. Perf
/// rows from a -O0 or assert-enabled build are not comparable to release
/// numbers, and this makes such artifacts self-identifying.
inline std::string build_flags() {
  std::string flags;
#if defined(NDEBUG)
  flags += "-DNDEBUG";
#else
  flags += "asserts";
#endif
#if defined(__OPTIMIZE__)
  flags += " -O2+";
#else
  flags += " -O0";
#endif
  return flags;
}

/// Machine-readable result sink behind `--json <path>`. Rows are collected
/// unconditionally (it is cheap); write() emits the file only when a path
/// was given on the command line.
///
///   JsonReport report("bench_kernels", argc, argv);
///   report.config("nb", 128);
///   report.row("gemm_nn_blocked").metric("gflops", 44.5).metric("nb", 128);
///   ...
///   report.write();  // at the end of main
class JsonReport {
 public:
  class Row {
   public:
    Row& metric(const std::string& key, double v) {
      fields_.emplace_back(key, num(v));
      return *this;
    }
    Row& metric(const std::string& key, long v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& metric(const std::string& key, int v) { return metric(key, static_cast<long>(v)); }
    Row& label(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, quoted(v));
      return *this;
    }

   private:
    friend class JsonReport;
    std::string name_;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  JsonReport(std::string bench, int argc, char** argv) : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    // Every report records the machine's concurrency so perf numbers from
    // different runners are comparable at a glance, plus provenance (commit,
    // time, toolchain) so a BENCH_*.json found loose is still attributable.
    config("hardware_concurrency",
           static_cast<long>(std::thread::hardware_concurrency()));
    config("git_sha", git_sha());
    config("timestamp", iso_timestamp_utc());
    config("compiler", compiler_id());
    config("build_flags", build_flags());
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void config(const std::string& key, double v) { config_.emplace_back(key, num(v)); }
  void config(const std::string& key, long v) { config_.emplace_back(key, std::to_string(v)); }
  void config(const std::string& key, int v) { config(key, static_cast<long>(v)); }
  void config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, quoted(v));
  }

  Row& row(const std::string& name) {
    rows_.emplace_back();
    rows_.back().name_ = name;
    return rows_.back();
  }

  /// Write the report if --json was given. Returns true when a file was
  /// written (and prints where, so logs show the artifact location).
  bool write() const {
    if (!enabled()) return false;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"config\": {", quoted(bench_).c_str());
    for (std::size_t i = 0; i < config_.size(); ++i)
      std::fprintf(f, "%s%s: %s", i ? ", " : "", quoted(config_[i].first).c_str(),
                   config_[i].second.c_str());
    std::fprintf(f, "},\n  \"results\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {\"name\": %s", quoted(rows_[r].name_).c_str());
      for (const auto& kv : rows_[r].fields_)
        std::fprintf(f, ", %s: %s", quoted(kv.first).c_str(), kv.second.c_str());
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
    return true;
  }

 private:
  static std::string num(double v) {
    if (!(v == v)) return "null";  // NaN has no JSON literal
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    // %g may emit "inf"; JSON has no literal for it either.
    if (buf[0] == 'i' || buf[1] == 'i') return "null";
    return buf;
  }
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    out.push_back('"');
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Row> rows_;
};

/// Best-of-N wall-clock timing of `fn` (seconds). Each sample runs `reps`
/// calls back to back; the per-call time of the fastest sample is returned —
/// the standard "least-disturbed run" estimator the perf rows report.
template <typename F>
double best_of(int samples, long reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int s = 0; s < samples; ++s) {
    Timer timer;
    for (long r = 0; r < reps; ++r) fn();
    const double dt = timer.seconds() / static_cast<double>(reps);
    if (dt < best) best = dt;
  }
  return best;
}

struct Config {
  int n_max;
  int nb;
  int samples;
};

inline Config config(int default_n, int default_nb = 48, int default_samples = 3) {
  Config c;
  c.n_max = static_cast<int>(env_long("LUQR_N", default_n));
  c.nb = static_cast<int>(env_long("LUQR_NB", default_nb));
  c.samples = static_cast<int>(env_long("LUQR_SAMPLES", default_samples));
  return c;
}

/// Random b for a given system size (fixed seed so runs are comparable).
inline Matrix<double> rhs_for(int n, std::uint64_t seed = 4242) {
  Matrix<double> b(n, 1);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();
  return b;
}

/// Mean HPL3 of the hybrid algorithm over `samples` random matrices, plus
/// the mean LU-step fraction. `alpha < 0` selects AlwaysQR; infinity selects
/// the criterion at alpha = inf.
struct HybridOutcome {
  double mean_hpl3 = 0.0;
  double mean_lu_fraction = 0.0;
};

inline HybridOutcome run_hybrid_random(const std::string& criterion, double alpha,
                                       int n, int nb, int samples,
                                       const core::HybridOptions& opt) {
  HybridOutcome out;
  for (int s = 0; s < samples; ++s) {
    const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
    const auto b = rhs_for(n, 100 + s);
    const Solver solver(SolverConfig()
                            .hybrid_options(opt)
                            .tile_size(nb)
                            .criterion(CriterionSpec::parse(criterion, alpha,
                                                            555 + s))
                            .backend(Backend::Serial));
    const auto r = solver.solve(a, b);
    out.mean_hpl3 += verify::hpl3(a, r.x, b) / samples;
    out.mean_lu_fraction += r.stats.lu_fraction() / samples;
  }
  return out;
}

/// Mean HPL3 of LUPP over the same ensemble (the stability reference all
/// figures normalize by).
inline double lupp_hpl3_random(int n, int nb, int samples) {
  double h = 0.0;
  for (int s = 0; s < samples; ++s) {
    const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
    const auto b = rhs_for(n, 100 + s);
    const auto r = baselines::lupp_solve(a, b, nb);
    h += verify::hpl3(a, r.x, b) / samples;
  }
  return h;
}

inline std::string fmt_ratio(double v) {
  if (!(v == v)) return "nan";
  if (v > 1e18) return "inf";
  return fmt_sci(v, 2);
}

}  // namespace luqr::bench
