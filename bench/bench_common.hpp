// Shared helpers for the benchmark harness.
//
// Every bench binary runs standalone with laptop-scale defaults and scales
// via environment variables:
//   LUQR_N        largest real-numerics problem size (default per bench)
//   LUQR_NB       tile size for real-numerics runs (default 48)
//   LUQR_SAMPLES  matrices per ensemble average (default 3)
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "luqr.hpp"

namespace luqr::bench {

struct Config {
  int n_max;
  int nb;
  int samples;
};

inline Config config(int default_n, int default_nb = 48, int default_samples = 3) {
  Config c;
  c.n_max = static_cast<int>(env_long("LUQR_N", default_n));
  c.nb = static_cast<int>(env_long("LUQR_NB", default_nb));
  c.samples = static_cast<int>(env_long("LUQR_SAMPLES", default_samples));
  return c;
}

/// Random b for a given system size (fixed seed so runs are comparable).
inline Matrix<double> rhs_for(int n, std::uint64_t seed = 4242) {
  Matrix<double> b(n, 1);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();
  return b;
}

/// Mean HPL3 of the hybrid algorithm over `samples` random matrices, plus
/// the mean LU-step fraction. `alpha < 0` selects AlwaysQR; infinity selects
/// the criterion at alpha = inf.
struct HybridOutcome {
  double mean_hpl3 = 0.0;
  double mean_lu_fraction = 0.0;
};

inline HybridOutcome run_hybrid_random(const std::string& criterion, double alpha,
                                       int n, int nb, int samples,
                                       const core::HybridOptions& opt) {
  HybridOutcome out;
  for (int s = 0; s < samples; ++s) {
    const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
    const auto b = rhs_for(n, 100 + s);
    const Solver solver(SolverConfig()
                            .hybrid_options(opt)
                            .tile_size(nb)
                            .criterion(CriterionSpec::parse(criterion, alpha,
                                                            555 + s))
                            .backend(Backend::Serial));
    const auto r = solver.solve(a, b);
    out.mean_hpl3 += verify::hpl3(a, r.x, b) / samples;
    out.mean_lu_fraction += r.stats.lu_fraction() / samples;
  }
  return out;
}

/// Mean HPL3 of LUPP over the same ensemble (the stability reference all
/// figures normalize by).
inline double lupp_hpl3_random(int n, int nb, int samples) {
  double h = 0.0;
  for (int s = 0; s < samples; ++s) {
    const auto a = gen::generate(gen::MatrixKind::Random, n, 9000 + s);
    const auto b = rhs_for(n, 100 + s);
    const auto r = baselines::lupp_solve(a, b, nb);
    h += verify::hpl3(a, r.x, b) / samples;
  }
  return h;
}

inline std::string fmt_ratio(double v) {
  if (!(v == v)) return "nan";
  if (v > 1e18) return "inf";
  return fmt_sci(v, 2);
}

}  // namespace luqr::bench
