// Microbenchmarks for every tile kernel — the calibration aid for the
// simulator's efficiency table, the regression guard on kernel throughput,
// and (with --json) the machine-readable perf record the CI perf-smoke job
// archives.
//
// The headline rows compare the packed cache-blocked GEMM against the
// seed's axpy/dot loops (gemm_unblocked) for all four transpose variants:
// the `speedup` metric at nb >= 128 is the number the kernel-layer
// acceptance criterion tracks. Scale knobs:
//   LUQR_SAMPLES   best-of-N samples per row              (default 3)
//   LUQR_FLOPS     target flops per timing sample         (default 2e8)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/pack.hpp"

namespace {

using namespace luqr;
using namespace luqr::kern;

int g_samples = 3;
double g_target_flops = 2e8;

Matrix<double> rnd(int m, int n, std::uint64_t seed) {
  Matrix<double> a(m, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) a(i, j) = rng.gaussian();
  return a;
}

Matrix<double> rnd_upper(int n, std::uint64_t seed) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) a(i, j) = rng.gaussian();
    a(j, j) += 4.0;
  }
  return a;
}

long reps_for(double flops) {
  return std::max(1L, static_cast<long>(g_target_flops / flops));
}

TextTable& table() {
  static TextTable t = [] {
    TextTable t0;
    t0.header({"kernel", "nb", "GFLOP/s", "best s", "reps"});
    return t0;
  }();
  return t;
}

/// Time one kernel invocation, print a table row, record a JSON row.
/// Returns the measured GFLOP/s.
template <typename F>
double run_case(bench::JsonReport& report, const std::string& name, int nb,
                double flops, F&& fn) {
  const long reps = reps_for(flops);
  const double secs = bench::best_of(g_samples, reps, fn);
  const double gflops = flops / secs / 1e9;
  table().row({name, std::to_string(nb), fmt_fixed(gflops, 2),
               fmt_sci(secs, 3), std::to_string(reps)});
  report.row(name)
      .metric("nb", nb)
      .metric("gflops", gflops)
      .metric("best_seconds", secs)
      .metric("reps", reps)
      .metric("samples", g_samples);
  return gflops;
}

const char* trans_name(Trans t) { return t == Trans::No ? "n" : "t"; }

// One GEMM variant at one size, blocked and unblocked, plus the speedup row.
template <typename T>
void bench_gemm_variant(bench::JsonReport& report, const char* type_tag,
                        Trans ta, Trans tb, int nb) {
  const double flops = 2.0 * nb * nb * nb;
  Matrix<T> a(nb, nb), b(nb, nb), c(nb, nb);
  {
    Rng rng(1);
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < nb; ++i) {
        a(i, j) = static_cast<T>(rng.gaussian());
        b(i, j) = static_cast<T>(rng.gaussian());
        c(i, j) = static_cast<T>(rng.gaussian());
      }
  }
  const std::string variant =
      std::string("gemm_") + trans_name(ta) + trans_name(tb) + "_" + type_tag;
  const double blocked =
      run_case(report, variant + "_blocked", nb, flops, [&] {
        gemm_blocked(ta, tb, T(-1), a.cview(), b.cview(), T(1), c.view());
      });
  const double simple =
      run_case(report, variant + "_simple", nb, flops, [&] {
        gemm_unblocked(ta, tb, T(-1), a.cview(), b.cview(), T(1), c.view());
      });
  const double speedup = blocked / simple;
  table().row({variant + "_speedup", std::to_string(nb),
               fmt_fixed(speedup, 2) + "x", "", ""});
  report.row(variant + "_speedup").metric("nb", nb).metric("speedup", speedup);
}

void bench_factor_kernels(bench::JsonReport& report, int nb) {
  // GETRF.
  {
    const auto a0 = rnd(nb, nb, 11);
    std::vector<int> piv;
    run_case(report, "getrf", nb, (2.0 / 3.0) * nb * nb * nb, [&] {
      auto a = a0;
      getrf(a.view(), piv);
    });
  }
  // TRSM (right, upper).
  {
    const auto u = rnd_upper(nb, 12);
    auto b = rnd(nb, nb, 13);
    run_case(report, "trsm", nb, 1.0 * nb * nb * nb, [&] {
      trsm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0, u.cview(),
           b.view());
    });
  }
  // GEQRT.
  {
    const auto a0 = rnd(nb, nb, 14);
    Matrix<double> t(nb, nb);
    run_case(report, "geqrt", nb, (4.0 / 3.0) * nb * nb * nb, [&] {
      auto a = a0;
      geqrt(a.view(), t.view());
    });
  }
  // UNMQR apply (the W = V^T C / C -= V W shape).
  {
    auto v = rnd(nb, nb, 15);
    Matrix<double> t(nb, nb);
    geqrt(v.view(), t.view());
    auto c = rnd(nb, nb, 16);
    run_case(report, "unmqr", nb, 4.0 * nb * nb * nb, [&] {
      unmqr(Trans::Yes, v.cview(), t.cview(), c.view());
    });
  }
  // TSQRT + TSMQR.
  {
    const auto r0 = rnd_upper(nb, 17);
    const auto v0 = rnd(nb, nb, 18);
    Matrix<double> t(nb, nb);
    run_case(report, "tsqrt", nb, 2.0 * nb * nb * nb, [&] {
      auto r = r0;
      auto v = v0;
      tsqrt(r.view(), v.view(), t.view());
    });
    auto r = r0;
    auto v = v0;
    tsqrt(r.view(), v.view(), t.view());
    auto c1 = rnd(nb, nb, 19), c2 = rnd(nb, nb, 20);
    run_case(report, "tsmqr", nb, 4.0 * nb * nb * nb, [&] {
      tsmqr(Trans::Yes, v.cview(), t.cview(), c1.view(), c2.view());
    });
  }
  // TTQRT + TTMQR.
  {
    const auto r1_0 = rnd_upper(nb, 21);
    const auto r2_0 = rnd_upper(nb, 22);
    Matrix<double> t(nb, nb);
    run_case(report, "ttqrt", nb, 1.0 * nb * nb * nb, [&] {
      auto r1 = r1_0;
      auto r2 = r2_0;
      ttqrt(r1.view(), r2.view(), t.view());
    });
    auto r1 = r1_0;
    auto r2 = r2_0;
    ttqrt(r1.view(), r2.view(), t.view());
    auto c1 = rnd(nb, nb, 23), c2 = rnd(nb, nb, 24);
    run_case(report, "ttmqr", nb, 2.0 * nb * nb * nb, [&] {
      ttmqr(Trans::Yes, r2.cview(), t.cview(), c1.view(), c2.view());
    });
  }
  // TSTRF (incremental pivoting).
  {
    const auto u0 = rnd_upper(nb, 25);
    const auto a0 = rnd(nb, nb, 26);
    Matrix<double> l1(nb, nb);
    std::vector<int> piv;
    run_case(report, "tstrf", nb, 1.0 * nb * nb * nb, [&] {
      auto u = u0;
      auto a = a0;
      tstrf(u.view(), a.view(), l1.view(), piv);
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_samples = static_cast<int>(env_long("LUQR_SAMPLES", 3));
  g_target_flops = env_double("LUQR_FLOPS", 2e8);

  bench::JsonReport report("bench_kernels", argc, argv);
  const GemmBlocking& bl = gemm_blocking();
  report.config("gemm_mc", bl.mc);
  report.config("gemm_kc", bl.kc);
  report.config("gemm_nc", bl.nc);
  report.config("gemm_small_mnk", bl.small_mnk);
  report.config("samples", g_samples);
  report.config("target_flops", g_target_flops);

  // Headline: blocked vs simple GEMM, all four transpose variants (double)
  // plus the nn float variant, across tile sizes.
  for (int nb : {32, 64, 128, 240}) {
    bench_gemm_variant<double>(report, "f64", Trans::No, Trans::No, nb);
  }
  for (int nb : {128, 240}) {
    bench_gemm_variant<double>(report, "f64", Trans::Yes, Trans::No, nb);
    bench_gemm_variant<double>(report, "f64", Trans::No, Trans::Yes, nb);
    bench_gemm_variant<double>(report, "f64", Trans::Yes, Trans::Yes, nb);
    bench_gemm_variant<float>(report, "f32", Trans::No, Trans::No, nb);
  }

  // The full tile-kernel roster at the paper's working sizes.
  for (int nb : {64, 240}) bench_factor_kernels(report, nb);

  std::printf("%s", table().str().c_str());
  report.write();
  return 0;
}
