// google-benchmark microbenchmarks for every tile kernel — the calibration
// aid for the simulator's efficiency table and a regression guard on the
// kernels' throughput.
#include <benchmark/benchmark.h>

#include "luqr.hpp"

namespace {

using namespace luqr;
using namespace luqr::kern;

Matrix<double> rnd(int m, int n, std::uint64_t seed) {
  Matrix<double> a(m, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) a(i, j) = rng.gaussian();
  return a;
}

Matrix<double> rnd_upper(int n, std::uint64_t seed) {
  Matrix<double> a(n, n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) a(i, j) = rng.gaussian();
    a(j, j) += 4.0;
  }
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  auto a = rnd(nb, nb, 1), b = rnd(nb, nb, 2), c = rnd(nb, nb, 3);
  for (auto _ : state) {
    gemm(Trans::No, Trans::No, -1.0, a.cview(), b.cview(), 1.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(240);

void BM_Trsm(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  auto u = rnd_upper(nb, 1);
  auto b = rnd(nb, nb, 2);
  for (auto _ : state) {
    trsm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0, u.cview(),
         b.view());
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      1.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(240);

void BM_Getrf(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const auto a0 = rnd(nb, nb, 1);
  std::vector<int> piv;
  for (auto _ : state) {
    auto a = a0;
    getrf(a.view(), piv);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      (2.0 / 3.0) * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Getrf)->Arg(64)->Arg(240);

void BM_Geqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const auto a0 = rnd(nb, nb, 1);
  Matrix<double> t(nb, nb);
  for (auto _ : state) {
    auto a = a0;
    geqrt(a.view(), t.view());
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      (4.0 / 3.0) * nb * nb * nb * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Geqrt)->Arg(64)->Arg(240);

void BM_Tsqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const auto r0 = rnd_upper(nb, 1);
  const auto v0 = rnd(nb, nb, 2);
  Matrix<double> t(nb, nb);
  for (auto _ : state) {
    auto r = r0;
    auto v = v0;
    tsqrt(r.view(), v.view(), t.view());
    benchmark::DoNotOptimize(v.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Tsqrt)->Arg(64)->Arg(240);

void BM_Tsmqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  auto r = rnd_upper(nb, 1);
  auto v = rnd(nb, nb, 2);
  Matrix<double> t(nb, nb);
  tsqrt(r.view(), v.view(), t.view());
  auto c1 = rnd(nb, nb, 3), c2 = rnd(nb, nb, 4);
  for (auto _ : state) {
    tsmqr(Trans::Yes, v.cview(), t.cview(), c1.view(), c2.view());
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      4.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Tsmqr)->Arg(64)->Arg(240);

void BM_Ttqrt(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const auto r1_0 = rnd_upper(nb, 1);
  const auto r2_0 = rnd_upper(nb, 2);
  Matrix<double> t(nb, nb);
  for (auto _ : state) {
    auto r1 = r1_0;
    auto r2 = r2_0;
    ttqrt(r1.view(), r2.view(), t.view());
    benchmark::DoNotOptimize(r2.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      1.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Ttqrt)->Arg(64)->Arg(240);

void BM_Ttmqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  auto r1 = rnd_upper(nb, 1);
  auto r2 = rnd_upper(nb, 2);
  Matrix<double> t(nb, nb);
  ttqrt(r1.view(), r2.view(), t.view());
  auto c1 = rnd(nb, nb, 3), c2 = rnd(nb, nb, 4);
  for (auto _ : state) {
    ttmqr(Trans::Yes, r2.cview(), t.cview(), c1.view(), c2.view());
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Ttmqr)->Arg(64)->Arg(240);

void BM_Tstrf(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  const auto u0 = rnd_upper(nb, 1);
  const auto a0 = rnd(nb, nb, 2);
  Matrix<double> l1(nb, nb);
  std::vector<int> piv;
  for (auto _ : state) {
    auto u = u0;
    auto a = a0;
    tstrf(u.view(), a.view(), l1.view(), piv);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      1.0 * nb * nb * nb * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Tstrf)->Arg(64)->Arg(240);

void BM_HybridSolveSmall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = gen::generate(gen::MatrixKind::Random, n, 1);
  Matrix<double> b(n, 1);
  Rng rng(2);
  for (int i = 0; i < n; ++i) b(i, 0) = rng.gaussian();
  const Solver solver(SolverConfig()
                          .criterion(CriterionSpec::max(50.0))
                          .tile_size(32)
                          .backend(Backend::Serial));
  for (auto _ : state) {
    auto r = solver.solve(a, b);
    benchmark::DoNotOptimize(r.x.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      (2.0 / 3.0) * n * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HybridSolveSmall)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
