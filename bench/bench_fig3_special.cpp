// Figure 3 reproduction: stability on special matrices. Relative HPL3
// (ratio to LUPP) for LU NoPiv, LUQR with random choices, LUQR with the Max
// criterion, LUQR with the MUMPS criterion, and HQR, on 5 random matrices
// plus the 21 special matrices of Table III — and the Fiedler matrix the
// paper's §V-C text discusses. Real numerics; the paper ran N = 40,000 on a
// 16x1 grid, we default to laptop scale on the same logical grid.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace luqr;
  using namespace luqr::bench;
  const auto c = config(/*n=*/512, /*nb=*/32, /*samples=*/1);
  const int n = c.n_max;

  core::HybridOptions opt;
  opt.grid_p = 16;  // the paper's 16x1 grid for this experiment
  opt.grid_q = 1;

  // Thresholds mirroring the paper's choices in spirit (the paper used
  // alpha = 50 for random choices -> 50% LU probability, 6000 for Max at
  // N=40,000, 2.1 for MUMPS; Max's alpha rescales with problem size).
  const double alpha_max = env_double("LUQR_ALPHA_MAX", 50.0);
  const double alpha_mumps = env_double("LUQR_ALPHA_MUMPS", 2.1);

  bench::JsonReport json("bench_fig3_special", argc, argv);
  json.config("n", n);
  json.config("nb", c.nb);
  json.config("alpha_max", alpha_max);
  json.config("alpha_mumps", alpha_mumps);

  std::printf("=== Figure 3: relative HPL3 (ratio to LUPP) on special matrices ===\n");
  std::printf("N = %d, nb = %d, 16x1 grid; 'inf'/'nan' = failed solve\n\n", n, c.nb);

  TextTable t;
  t.header({"matrix", "LU NoPiv", "LUQR rand50", "LUQR max", "LUQR mumps", "HQR",
            "%LU max", "%LU mumps"});

  const SolverConfig base =
      SolverConfig().hybrid_options(opt).tile_size(c.nb).backend(Backend::Serial);

  auto run_matrix = [&](const std::string& label, const Matrix<double>& a) {
    const auto b = rhs_for(a.rows(), 1234);
    const double lupp = verify::hpl3(a, baselines::lupp_solve(a, b, c.nb).x, b);

    const double nopiv =
        verify::hpl3(a, baselines::lu_nopiv_solve(a, b, c.nb).x, b);

    const auto r_rand =
        Solver(SolverConfig(base).criterion(CriterionSpec::random(0.5, 99)))
            .solve(a, b);
    const double h_rand = verify::hpl3(a, r_rand.x, b);

    const auto r_max =
        Solver(SolverConfig(base).criterion(CriterionSpec::max(alpha_max)))
            .solve(a, b);
    const double h_max = verify::hpl3(a, r_max.x, b);

    const auto r_mumps =
        Solver(SolverConfig(base).criterion(CriterionSpec::mumps(alpha_mumps)))
            .solve(a, b);
    const double h_mumps = verify::hpl3(a, r_mumps.x, b);

    const double hqr = verify::hpl3(a, baselines::hqr_solve(a, b, c.nb, 16, 1).x, b);

    t.row({label, fmt_ratio(nopiv / lupp), fmt_ratio(h_rand / lupp),
           fmt_ratio(h_max / lupp), fmt_ratio(h_mumps / lupp),
           fmt_ratio(hqr / lupp),
           fmt_fixed(100.0 * r_max.stats.lu_fraction(), 0),
           fmt_fixed(100.0 * r_mumps.stats.lu_fraction(), 0)});
    json.row(label)
        .metric("lu_nopiv_ratio", nopiv / lupp)
        .metric("rand50_ratio", h_rand / lupp)
        .metric("max_ratio", h_max / lupp)
        .metric("mumps_ratio", h_mumps / lupp)
        .metric("hqr_ratio", hqr / lupp)
        .metric("lu_fraction_max", r_max.stats.lu_fraction())
        .metric("lu_fraction_mumps", r_mumps.stats.lu_fraction());
  };

  for (int s = 0; s < 5; ++s) {
    run_matrix("random#" + std::to_string(s),
               gen::generate(gen::MatrixKind::Random, n, 7000 + s));
  }
  for (auto kind : gen::special_set()) {
    run_matrix(gen::kind_name(kind), gen::generate(kind, n, 42));
  }
  run_matrix("fiedler", gen::generate(gen::MatrixKind::Fiedler, n, 42));

  std::printf("%s\n", t.str().c_str());
  std::printf("expected shape (paper): random choices fail on several specials\n"
              "(large ratios); the Max criterion stays near 1 everywhere; MUMPS is\n"
              "good except on wilkinson/foster-class matrices; HQR ~ 1 throughout.\n");
  json.write();
  return 0;
}
